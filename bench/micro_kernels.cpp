/// Micro-benchmarks (google-benchmark) for the design-choice ablations
/// called out in DESIGN.md:
///   * AoS vs SoA field layout under the generic kernel,
///   * by-cell (tier 2) vs by-direction split-loop SIMD (tier 3) update,
///   * SIMD backend width (scalar / SSE2 / AVX2),
///   * sparse strategies: conditional vs cell-list vs line-interval,
///   * full vs direction-sliced ghost-layer packing,
///   * triangle octree vs brute-force closest-triangle queries,
///   * graph partitioner throughput.

#include <benchmark/benchmark.h>

#include "core/Random.h"
#include "core/Timer.h"
#include "geometry/Primitives.h"
#include "lbm/Boundary.h"
#include "geometry/SignedDistance.h"
#include "lbm/Communication.h"
#include "lbm/KernelAa.h"
#include "lbm/KernelAaSimd.h"
#include "lbm/KernelD3Q19Simd.h"
#include "lbm/KernelGeneric.h"
#include "lbm/Sparse.h"
#include "perf/Machine.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "partition/Partitioner.h"
#include "vmpi/BufferSystem.h"
#include "vmpi/SerialComm.h"

namespace {

using namespace walb;
using namespace walb::lbm;

constexpr cell_idx_t kN = 48;

PdfField makeField(field::Layout layout) {
    PdfField f(kN, kN, kN, D3Q19::Q, layout, real_c(0), 1);
    initEquilibrium<D3Q19>(f, 1.0, {0.01, 0.005, -0.01});
    return f;
}

void BM_GenericKernel_SoA(benchmark::State& state) {
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    for (auto _ : state) {
        streamCollideGeneric<D3Q19>(src, dst, op);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}
BENCHMARK(BM_GenericKernel_SoA)->Unit(benchmark::kMillisecond);

void BM_GenericKernel_AoS(benchmark::State& state) {
    PdfField src = makeField(field::Layout::zyxf), dst = makeField(field::Layout::zyxf);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    for (auto _ : state) {
        streamCollideGeneric<D3Q19>(src, dst, op);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}
BENCHMARK(BM_GenericKernel_AoS)->Unit(benchmark::kMillisecond);

void BM_D3Q19Kernel_ByCell(benchmark::State& state) {
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    for (auto _ : state) {
        streamCollideD3Q19(src, dst, op);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}
BENCHMARK(BM_D3Q19Kernel_ByCell)->Unit(benchmark::kMillisecond);

template <typename V>
void BM_SimdKernel(benchmark::State& state) {
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    KernelD3Q19Simd<V> kernel;
    for (auto _ : state) {
        kernel.sweep(src, dst, op);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}
BENCHMARK(BM_SimdKernel<simd::ScalarD>)->Unit(benchmark::kMillisecond);
#if defined(__SSE2__)
BENCHMARK(BM_SimdKernel<simd::SseD>)->Unit(benchmark::kMillisecond);
#endif
#if defined(__AVX__)
BENCHMARK(BM_SimdKernel<simd::AvxD>)->Unit(benchmark::kMillisecond);
#endif

// ---- AA-pattern in-place streaming (tiers 4/5) -------------------------------
// One grid instead of two: the model traffic drops from 456 B/cell
// (19 reads + 19 writes + 19 write-allocate lines on the shadow grid) to
// 304 B/cell, and there is no swap. The even and odd kernels touch different
// address patterns, so both halves are measured separately as well as the
// alternating pair that makes up one full cycle. `bytes_per_cell` reports
// the model traffic so runs can be compared against the 2/3 expectation.

void BM_AaKernel_EvenScalar(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    for (auto _ : state) aaStreamCollide(f, AaParity::Even, op);
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
    state.counters["bytes_per_cell"] = perf::kAaBytesPerLUP;
}
BENCHMARK(BM_AaKernel_EvenScalar)->Unit(benchmark::kMillisecond);

void BM_AaKernel_OddScalar(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    for (auto _ : state) aaStreamCollide(f, AaParity::Odd, op);
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
    state.counters["bytes_per_cell"] = perf::kAaBytesPerLUP;
}
BENCHMARK(BM_AaKernel_OddScalar)->Unit(benchmark::kMillisecond);

void BM_AaKernel_AlternatingScalar(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    std::uint64_t step = 0;
    for (auto _ : state) aaStreamCollide(f, aaParityOfStep(step++), op);
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
    state.counters["bytes_per_cell"] = perf::kAaBytesPerLUP;
}
BENCHMARK(BM_AaKernel_AlternatingScalar)->Unit(benchmark::kMillisecond);

template <typename V>
void BM_AaSimdKernel(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    KernelAaSimd<V> kernel;
    std::uint64_t step = 0;
    for (auto _ : state) kernel.sweep(f, aaParityOfStep(step++), op);
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
    state.counters["bytes_per_cell"] = perf::kAaBytesPerLUP;
}
BENCHMARK(BM_AaSimdKernel<simd::ScalarD>)->Unit(benchmark::kMillisecond);
#if defined(__SSE2__)
BENCHMARK(BM_AaSimdKernel<simd::SseD>)->Unit(benchmark::kMillisecond);
#endif
#if defined(__AVX__)
BENCHMARK(BM_AaSimdKernel<simd::AvxD>)->Unit(benchmark::kMillisecond);
#endif

template <typename V>
void BM_AaSimdKernel_Even(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    KernelAaSimd<V> kernel;
    for (auto _ : state) kernel.sweep(f, AaParity::Even, op);
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
    state.counters["bytes_per_cell"] = perf::kAaBytesPerLUP;
}
BENCHMARK(BM_AaSimdKernel_Even<simd::BestD>)->Unit(benchmark::kMillisecond);

template <typename V>
void BM_AaSimdKernel_Odd(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    KernelAaSimd<V> kernel;
    for (auto _ : state) kernel.sweep(f, AaParity::Odd, op);
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
    state.counters["bytes_per_cell"] = perf::kAaBytesPerLUP;
}
BENCHMARK(BM_AaSimdKernel_Odd<simd::BestD>)->Unit(benchmark::kMillisecond);

// ---- observability overhead --------------------------------------------------
// The per-step instrumentation of the simulation drivers is one TimingPool
// ScopedTimer + one ScopedTrace per phase plus a few counter increments.
// Comparing this pair quantifies the overhead against the bare SIMD sweep
// (acceptance bar: < 5% per step).

void BM_Sweep_Uninstrumented(benchmark::State& state) {
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    KernelD3Q19Simd<> kernel;
    for (auto _ : state) {
        kernel.sweep(src, dst, op);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}
BENCHMARK(BM_Sweep_Uninstrumented)->Unit(benchmark::kMillisecond);

void BM_Sweep_ObsInstrumented(benchmark::State& state) {
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    KernelD3Q19Simd<> kernel;
    TimingPool timing;
    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace(0, /*maxEvents=*/std::size_t(1) << 16);
    obs::Counter& steps = metrics.counter("sim.steps");
    obs::Counter& bytes = metrics.counter("comm.bytesSent");
    for (auto _ : state) {
        {
            ScopedTimer t(timing["collideStream"]);
            obs::ScopedTrace tr(trace, "collideStream");
            kernel.sweep(src, dst, op);
        }
        src.swapDataWith(dst);
        steps.inc();
        bytes.inc(456);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
    state.counters["trace_events"] = double(trace.events().size() + trace.dropped());
}
BENCHMARK(BM_Sweep_ObsInstrumented)->Unit(benchmark::kMillisecond);

// ---- sparse strategies (tube through the block, ~25% fluid) -----------------

struct SparseFixture {
    SparseFixture() : flags(kN, kN, kN, 1) {
        fluid = flags.registerFlag(lbm::kFluidFlag);
        flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const real_t dy = real_c(y) - real_c(kN) / 2;
            const real_t dz = real_c(z) - real_c(kN) / 2;
            (void)x;
            if (dy * dy + dz * dz < real_c(kN * kN) / 16) flags.addFlag(x, y, z, fluid);
        });
    }
    field::FlagField flags;
    field::flag_t fluid;
};

void BM_Sparse_Conditional(benchmark::State& state) {
    SparseFixture fx;
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    for (auto _ : state) {
        streamCollideD3Q19(src, dst, op, &fx.flags, fx.fluid);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * fx.flags.count(fx.fluid));
}
BENCHMARK(BM_Sparse_Conditional)->Unit(benchmark::kMillisecond);

void BM_Sparse_CellList(benchmark::State& state) {
    SparseFixture fx;
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    const auto cells = buildFluidCellList(fx.flags, fx.fluid);
    for (auto _ : state) {
        streamCollideCellList(src, dst, cells, op);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * cells.size());
}
BENCHMARK(BM_Sparse_CellList)->Unit(benchmark::kMillisecond);

void BM_Sparse_LineIntervals(benchmark::State& state) {
    SparseFixture fx;
    PdfField src = makeField(field::Layout::fzyx), dst = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    const auto runs = buildFluidRuns(fx.flags, fx.fluid);
    KernelD3Q19Simd<> kernel;
    for (auto _ : state) {
        streamCollideIntervals(src, dst, runs, op, kernel);
        src.swapDataWith(dst);
    }
    state.SetItemsProcessed(state.iterations() * runs.fluidCells);
}
BENCHMARK(BM_Sparse_LineIntervals)->Unit(benchmark::kMillisecond);

// The in-place analogue of BM_Sparse_LineIntervals: the AA SIMD kernel over
// the same line-interval list, alternating even/odd each iteration.
void BM_AaSparse_LineIntervals(benchmark::State& state) {
    SparseFixture fx;
    PdfField f = makeField(field::Layout::fzyx);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    const auto runs = buildFluidRuns(fx.flags, fx.fluid);
    KernelAaSimd<> kernel;
    std::uint64_t step = 0;
    for (auto _ : state) aaCollideIntervals(f, aaParityOfStep(step++), runs, op, kernel);
    state.SetItemsProcessed(state.iterations() * runs.fluidCells);
    state.counters["bytes_per_cell"] = perf::kAaBytesPerLUP;
}
BENCHMARK(BM_AaSparse_LineIntervals)->Unit(benchmark::kMillisecond);

// ---- ghost packing -----------------------------------------------------------

void BM_Pack_DirectionSliced(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    for (auto _ : state) {
        std::size_t bytes = 0;
        for (const auto& d : neighborhood26) {
            SendBuffer buf;
            packPdfs<D3Q19>(f, d, buf, false);
            bytes += buf.size();
        }
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_Pack_DirectionSliced)->Unit(benchmark::kMillisecond);

void BM_Pack_FullPdfSet(benchmark::State& state) {
    PdfField f = makeField(field::Layout::fzyx);
    for (auto _ : state) {
        std::size_t bytes = 0;
        for (const auto& d : neighborhood26) {
            SendBuffer buf;
            packPdfs<D3Q19>(f, d, buf, true);
            bytes += buf.size();
        }
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_Pack_FullPdfSet)->Unit(benchmark::kMillisecond);

// ---- fluid-run construction and the core/shell split ------------------------

void BM_BuildFluidRuns_RowPointer(benchmark::State& state) {
    SparseFixture fx;
    for (auto _ : state) {
        const auto runs = buildFluidRuns(fx.flags, fx.fluid);
        benchmark::DoNotOptimize(runs.fluidCells);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}
BENCHMARK(BM_BuildFluidRuns_RowPointer)->Unit(benchmark::kMillisecond);

void BM_BuildFluidRuns_Naive(benchmark::State& state) {
    SparseFixture fx;
    for (auto _ : state) {
        const auto runs = buildFluidRunsNaive(fx.flags, fx.fluid);
        benchmark::DoNotOptimize(runs.fluidCells);
    }
    state.SetItemsProcessed(state.iterations() * kN * kN * kN);
}
BENCHMARK(BM_BuildFluidRuns_Naive)->Unit(benchmark::kMillisecond);

void BM_SplitFluidRuns_CoreShell(benchmark::State& state) {
    SparseFixture fx;
    const auto runs = buildFluidRuns(fx.flags, fx.fluid);
    // Realistic mask: every ghost region with an x component is backed by a
    // remote neighbor (a block in the middle of an x-pencil decomposition).
    std::array<bool, 26> remote{};
    for (std::size_t i = 0; i < 26; ++i)
        if (neighborhood26[i][0] != 0) remote[i] = true;
    for (auto _ : state) {
        const auto split = splitFluidRuns<D3Q19>(runs, kN, kN, kN, remote);
        benchmark::DoNotOptimize(split.core.fluidCells + split.shell.fluidCells);
    }
    state.SetItemsProcessed(state.iterations() * runs.fluidCells);
}
BENCHMARK(BM_SplitFluidRuns_CoreShell)->Unit(benchmark::kMillisecond);

// ---- buffer recycling --------------------------------------------------------

/// Steady-state neighbor exchange through the BufferSystem on a single-rank
/// comm. After a warmup exchange has sized the send buffer, repacking the
/// same payload every step must recycle the drained receive storage and
/// perform **zero** further send-buffer allocations — the acceptance bar of
/// the buffer-recycling work, enforced here via sendBufferAllocations().
void BM_BufferSystem_SteadyState(benchmark::State& state) {
    vmpi::SerialComm comm;
    vmpi::BufferSystem bs(comm, /*tag=*/9);
    bs.setReceiverInfo({0});
    const std::vector<std::uint8_t> payload(64 * 1024, 0xab);
    auto oneExchange = [&] {
        bs.sendBuffer(0).putBytes(payload.data(), payload.size());
        bs.beginExchange();
        bs.finishExchange([](int, RecvBuffer& buf) { buf.skip(buf.remaining()); });
    };
    oneExchange(); // sizes the buffer; all later rounds reuse its storage
    const std::uint64_t allocsAfterWarmup = bs.sendBufferAllocations();
    for (auto _ : state) {
        oneExchange();
        benchmark::DoNotOptimize(bs.cumulativeRecvBytes());
    }
    if (bs.sendBufferAllocations() != allocsAfterWarmup)
        state.SkipWithError("steady-state exchange allocated send-buffer storage");
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(payload.size()));
}
BENCHMARK(BM_BufferSystem_SteadyState)->Unit(benchmark::kMicrosecond);

// ---- geometry ----------------------------------------------------------------

void BM_ClosestTriangle_Octree(benchmark::State& state) {
    geometry::TriangleMesh mesh = geometry::makeSphereMesh({0, 0, 0}, 1.0, 64, 32);
    geometry::TriangleOctree octree(mesh);
    Random rng(5);
    for (auto _ : state) {
        const Vec3 p(rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2));
        benchmark::DoNotOptimize(octree.closestTriangle(p).sqrDistance);
    }
}
BENCHMARK(BM_ClosestTriangle_Octree);

void BM_ClosestTriangle_BruteForce(benchmark::State& state) {
    geometry::TriangleMesh mesh = geometry::makeSphereMesh({0, 0, 0}, 1.0, 64, 32);
    Random rng(5);
    for (auto _ : state) {
        const Vec3 p(rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2));
        real_t best = 1e300;
        for (std::size_t t = 0; t < mesh.numTriangles(); ++t)
            best = std::min(best, geometry::closestPointOnTriangle(
                                      p, mesh.triangleVertex(t, 0), mesh.triangleVertex(t, 1),
                                      mesh.triangleVertex(t, 2))
                                      .sqrDistance);
        benchmark::DoNotOptimize(best);
    }
}
BENCHMARK(BM_ClosestTriangle_BruteForce);

// ---- partitioner ---------------------------------------------------------------

void BM_GraphPartition(benchmark::State& state) {
    const auto n = std::uint32_t(state.range(0));
    partition::Graph g(std::size_t(n) * n * n);
    auto id = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
        return (z * n + y) * n + x;
    };
    for (std::uint32_t z = 0; z < n; ++z)
        for (std::uint32_t y = 0; y < n; ++y)
            for (std::uint32_t x = 0; x < n; ++x) {
                if (x + 1 < n) g.addEdge(id(x, y, z), id(x + 1, y, z));
                if (y + 1 < n) g.addEdge(id(x, y, z), id(x, y + 1, z));
                if (z + 1 < n) g.addEdge(id(x, y, z), id(x, y, z + 1));
            }
    g.finalize();
    partition::PartitionOptions opt;
    opt.numParts = 16;
    for (auto _ : state) benchmark::DoNotOptimize(partition::partitionGraph(g, opt).cutWeight);
    state.SetItemsProcessed(state.iterations() * g.numVertices());
}
BENCHMARK(BM_GraphPartition)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
