/// Figure 4 — ECM model vs measurement for the vectorized TRT kernel on
/// SuperMUC at 2.7 GHz and 1.6 GHz.
///
/// Paper: the ECM inputs are 448 cycles of in-L1 execution per 8 updates
/// (IACA) plus 114 cycles of cache-line transfers; with the measured
/// memory bandwidth the model matches the measured core sweep, predicts
/// that 1.6 GHz keeps 93% of the performance (all 8 cores then needed to
/// saturate) and saves ~25% energy.
///
/// Reproduction: the model curves are computed exactly; the "measured"
/// anchor is the local SIMD TRT kernel mapped through the machine ratio
/// (single-core local rate vs local roofline share).

#include <cstdio>

#include "perf/Ecm.h"
#include "perf/LocalBench.h"
#include "perf/Stream.h"

using namespace walb::perf;

int main() {
    std::printf("=== Figure 4: ECM model, SuperMUC socket, TRT SIMD kernel ===\n");

    const MachineSpec machine = superMUCSocket();
    const EcmModel fast(machine, KernelTier::Simd, 2.7);
    const EcmModel slow(machine, KernelTier::Simd, 1.6);

    std::printf("\nECM composition per 8 lattice updates (2.7 GHz):\n");
    std::printf("  T_core  = %6.0f cycles  (IACA static analysis; paper: 448)\n",
                fast.coreCyclesPer8LUP());
    std::printf("  T_cache = %6.0f cycles  (57 cache-line transfers x 2; paper: 114)\n",
                fast.cacheCyclesPer8LUP());
    std::printf("  T_mem   = %6.0f cycles  (456 B/LUP over the single-core bandwidth)\n",
                fast.memCyclesPer8LUP());

    std::printf("\nMLUPS vs cores, model at both frequencies:\n");
    std::printf("%6s %14s %14s %10s\n", "cores", "model@2.7GHz", "model@1.6GHz",
                "ratio");
    for (unsigned c = 1; c <= machine.coresPerChip; ++c) {
        const double f = fast.predictMLUPS(c);
        const double s = slow.predictMLUPS(c);
        std::printf("%6u %14.1f %14.1f %9.1f%%\n", c, f, s, 100.0 * s / f);
    }

    std::printf("\nsaturation: %u cores @2.7 GHz (paper: six of eight), "
                "%u cores @1.6 GHz (paper: all eight)\n",
                fast.saturationCores(), slow.saturationCores());
    std::printf("full-socket performance at 1.6 GHz: %.1f%% of 2.7 GHz (paper: 93%%)\n",
                100.0 * slow.predictMLUPS(8) / fast.predictMLUPS(8));
    std::printf("energy per cell update at 1.6 GHz: %.0f%% of 2.7 GHz "
                "(paper: ~25%% less)\n",
                100.0 * slow.relativeEnergyPerLUP(fast, 8));

    // Local measurement anchor: how far the local SIMD kernel sits from the
    // local memory roofline, compared with the model's single-core share.
    const StreamResult stream = measureStreamBandwidth(32u << 20, 2);
    const auto local = measureKernelMLUPS(KernelTier::Simd, true);
    const double localRoofline = rooflineMLUPS(stream.lbmLikeGiBs);
    std::printf("\nlocal validation: SIMD TRT %.1f MLUPS vs local roofline %.1f MLUPS "
                "(%.0f%% of bound;\n  the single-core model share on SuperMUC is %.0f%%)\n",
                local.mlups, localRoofline, 100.0 * local.mlups / localRoofline,
                100.0 * fast.predictMLUPS(1) / fast.saturationMLUPS());
    return 0;
}
