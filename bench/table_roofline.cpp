/// §4.1 table-level numbers — roofline bounds and bandwidth arithmetic.
///
/// Paper: one cell update streams 19 doubles in and out plus write
/// allocate = 456 B; SuperMUC socket: STREAM 40 GiB/s, 37.3 GiB/s with
/// LBM-like concurrent store streams -> 87.8 MLUPS roofline; JUQUEEN node:
/// 42.4 / 32.4 GiB/s -> 76.2 MLUPS. Aggregate-bandwidth fractions of the
/// weak-scaling records: 54.2% (SuperMUC, 837 GLUPS) and 67.4% (JUQUEEN,
/// 1.93 TLUPS).
///
/// Reproduction: the arithmetic is recomputed from the machine specs, and
/// the same STREAM methodology (plain copy vs multi-stream) runs on the
/// local host, demonstrating the usable-bandwidth gap the paper measures.

#include <cstdio>

#include "perf/Machine.h"
#include "perf/Stream.h"

using namespace walb::perf;

int main() {
    std::printf("=== Roofline bounds and bandwidth arithmetic (paper §4.1/4.2) ===\n");

    std::printf("\nbytes per lattice-cell update: 19 PDFs x 8 B x (load + store + write "
                "allocate) = %.0f B\n", kBytesPerLUP);

    for (const MachineSpec& m : {superMUCSocket(), juqueenNode()}) {
        std::printf("\n[%s]\n", m.name.c_str());
        std::printf("  STREAM bandwidth:           %5.1f GiB/s\n", m.streamBandwidthGiBs);
        std::printf("  with concurrent stores:     %5.1f GiB/s\n", m.usableBandwidthGiBs);
        std::printf("  roofline:                   %5.1f MLUPS  (paper: %s)\n",
                    rooflineMLUPS(m.usableBandwidthGiBs),
                    m.coresPerIsland ? "87.8" : "76.2");
    }

    // The paper's aggregate-bandwidth fractions, recomputed exactly.
    {
        const double glups = 837e9;
        const double fraction = glups * 19.0 * 3.0 * 8.0 / kGiB /
                                (double(1u << 17) / 8.0 * 40.0);
        std::printf("\nSuperMUC record: 837 GLUPS over 2^17 cores = %.1f%% of the "
                    "aggregate 40 GiB/s sockets (paper: 54.2%%)\n", 100.0 * fraction);
    }
    {
        const double tlups = 1.93e12;
        const double fraction =
            tlups * 19.0 * 3.0 * 8.0 / kGiB / (458752.0 / 16.0 * 42.4);
        std::printf("JUQUEEN record: 1.93 TLUPS over 458,752 cores = %.1f%% of the "
                    "aggregate 42.4 GiB/s nodes (paper: 67.4%%)\n", 100.0 * fraction);
    }

    std::printf("\nlocal STREAM methodology check (single core):\n");
    const StreamResult r = measureStreamBandwidth();
    std::printf("  copy   %6.2f GiB/s\n  triad  %6.2f GiB/s\n  LBM-like multi-stream "
                "%6.2f GiB/s\n", r.copyGiBs, r.triadGiBs, r.lbmLikeGiBs);
    std::printf("  local roofline from the multi-stream value: %.1f MLUPS\n",
                rooflineMLUPS(r.lbmLikeGiBs));
    return 0;
}
