/// Figure 7 — weak scaling with the complex vascular geometry.
///
/// Paper: MFLUPS per core (solid) and the fluid fraction of the allocated
/// blocks (dashed) vs cores, on SuperMUC (up to 2^17, blocks 170^3) and
/// JUQUEEN (up to 458,752, blocks 80^3). Key effect: with more processes
/// the blocks become smaller, fit the vessel tree better, the fluid
/// fraction rises — and with it the efficiency of kernels and
/// communication; MFLUPS/core *increases* with scale, unlike the flat
/// dense curves of Figure 6.
///
/// Reproduction: the partitionings are computed for real at every scale
/// with the binary search of §2.3 (fluid fractions are exact, measured on
/// the synthetic tree with scaled-down 16^3 blocks); the time axis uses
/// the calibrated machine models; the smallest scales also run for real on
/// virtual-MPI ranks.

#include <cstdio>
#include <fstream>

#include "blockforest/ScalingSetup.h"
#include "geometry/CoronaryTree.h"
#include "obs/Report.h"
#include "perf/Scaling.h"
#include "rebalance_drill.h"
#include "recovery_drill.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/ThreadComm.h"

using namespace walb;
using namespace walb::perf;

namespace {

constexpr std::uint32_t kCellsPerBlockEdge = 16;

geometry::CoronaryTree makeTree() {
    geometry::CoronaryTreeParams params;
    params.seed = 2013;
    params.bounds = AABB(0, 0, 0, 1, 1, 1);
    params.rootRadius = 0.04;
    params.minRadius = 0.006;
    params.maxDepth = 11;
    return geometry::CoronaryTree::generate(params);
}

struct VascularPoint {
    uint_t processes;
    uint_t blocks;
    double fluidFraction;
    double fluidPerProcess;
    double imbalance;
    real_t dx;
};

VascularPoint partitionAt(const geometry::DistanceFunction& phi, uint_t processes) {
    // Like the paper: "we allocate up to four blocks on every process and
    // enable load balancing".
    auto search = bf::findWeakScalingPartition(phi, AABB(0, 0, 0, 1, 1, 1),
                                               kCellsPerBlockEdge, 4 * processes);
    search.forest.assignFluidCellWorkload(phi);
    search.forest.balanceMorton(std::uint32_t(processes));
    const auto stats = search.forest.balanceStats();
    const double totalCells =
        double(search.blocks) * double(search.forest.config().cellsPerBlock());
    return {processes,
            search.blocks,
            double(search.forest.totalWorkload()) / totalCells,
            double(search.forest.totalWorkload()) / double(processes),
            stats.imbalance,
            search.dx};
}

void modelCurves(const std::vector<VascularPoint>& points) {
    struct MachineCase {
        MachineSpec machine;
        NetworkParams network;
        unsigned threadsPerProcess;
        double processesPerNode;
        double paperBlockEdge; ///< the paper's block size on this machine
    };
    const MachineCase cases[] = {
        {superMUCSocket(), prunedTreeNetwork(), 4, 4, 170},  // paper: 4P4T, 170^3 blocks
        {juqueenNode(), torusNetwork(), 4, 16, 80},          // paper: 16P4T, 80^3 blocks
    };
    for (const auto& c : cases) {
        const ScalingModel model(c.machine, c.network);
        std::printf("\n[%s] modeled vascular weak scaling (%uP%uT, block statistics\n"
                    "  measured at %u^3 and mapped onto the paper's %.0f^3 blocks):\n",
                    c.machine.name.c_str(), unsigned(c.processesPerNode),
                    c.threadsPerProcess, kCellsPerBlockEdge, c.paperBlockEdge);
        std::printf("%10s %9s %10s %12s %7s\n", "cores", "blocks", "fluidfrac",
                    "MFLUPS/core", "MPI%");
        for (const auto& p : points) {
            const unsigned cores = unsigned(p.processes) * c.threadsPerProcess;
            // Map the measured per-block statistics (fluid fraction, blocks
            // per process, imbalance) onto the paper's block size: volumes
            // scale with edge^3, exchanged surfaces with edge^2.
            const double cellsPerBlock =
                c.paperBlockEdge * c.paperBlockEdge * c.paperBlockEdge;
            DecompositionStats stats;
            stats.blocksPerProcess = double(p.blocks) / double(p.processes);
            stats.cellsPerProcess = stats.blocksPerProcess * cellsPerBlock;
            stats.fluidCellsPerProcess = p.fluidFraction * stats.cellsPerProcess;
            // Communication is unaware of fluid cells: full block surfaces
            // are exchanged (paper §4.3).
            stats.ghostBytesPerProcess =
                cubeGhostBytes(c.paperBlockEdge) * stats.blocksPerProcess;
            stats.messagesPerProcess = 18.0 * stats.blocksPerProcess;
            stats.processesPerNode = c.processesPerNode;
            stats.loadImbalance = p.imbalance;
            const auto point = model.fromDecomposition(cores, c.threadsPerProcess, stats);
            std::printf("%10u %9llu %9.1f%% %12.3f %6.1f%%\n", cores,
                        (unsigned long long)p.blocks, 100.0 * p.fluidFraction,
                        point.mlupsPerCore, 100.0 * point.mpiFraction);
        }
    }
}

/// Telemetry of one real virtual-rank run, for the JSON exporter.
struct RealRunRecord {
    int ranks = 0;
    uint_t blocks = 0;
    double fluidCells = 0;
    double mflupsPerRank = 0;
    double commFraction = 0;
    obs::ReducedTimingPool phases;
    obs::ReducedMetrics metrics;
};

RealRunRecord realRun(const geometry::DistanceFunction& phi, int ranks, bool overlap,
                      const sim::CheckpointOptions& ckptOpt = {}) {
    auto search =
        bf::findWeakScalingPartition(phi, AABB(0, 0, 0, 1, 1, 1), kCellsPerBlockEdge,
                                     uint_t(ranks) * 16);
    search.forest.assignFluidCellWorkload(phi);
    search.forest.balanceGraph(std::uint32_t(ranks));

    const auto flagInit = bench::vascularFlagInit(&phi);

    RealRunRecord record;
    vmpi::ThreadCommWorld::launch(ranks, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, search.forest, flagInit);
        simulation.setOverlapCommunication(overlap);
        // ECM reference for the live model-vs-measured gauges
        // (perf.predicted_mlups / perf.efficiency in the exported metrics).
        simulation.setPerfReference(EcmModel(superMUCSocket()).singleCoreMLUPS());
        uint_t steps = 20;
        if (ckptOpt.any()) {
            // Checkpoint/restart contract (see sim/Checkpoint.h): restart,
            // periodic saves, simulated kill via --stop-after.
            steps = uint_t(sim::runWithCheckpoints(simulation, ckptOpt, steps,
                                                   lbm::TRT::fromOmegaAndMagic(1.5)));
        } else {
            simulation.run(steps, lbm::TRT::fromOmegaAndMagic(1.5));
        }
        // Collectives: every rank must participate.
        const double fluid = double(simulation.globalFluidCells());
        const obs::ReducedTimingPool reduced = simulation.reduceTiming();
        const obs::ReducedMetrics metrics = simulation.reduceMetrics();
        if (comm.rank() == 0) {
            const double mflups = fluid * double(steps) /
                                  simulation.timing().grandTotal() / 1e6 / double(ranks);
            std::printf("%6d %9llu %12.0f %11.2f %7.1f%%\n", ranks,
                        (unsigned long long)search.blocks, fluid, mflups,
                        100.0 * simulation.timing().fraction("communication"));
            record = {ranks,  search.blocks,
                      fluid,  mflups,
                      reduced.fraction("communication"), reduced, metrics};
        }
    });
    return record;
}

} // namespace

int main(int argc, char** argv) {
    std::printf("=== Figure 7: weak scaling with the vascular geometry ===\n");
    const std::string metricsPath = obs::metricsJsonPathFromArgs(argc, argv);
    const auto tree = makeTree();
    const auto phi = tree.implicitDistance();
    std::printf("synthetic tree: %zu segments, bbox fluid fraction %.2f%%\n",
                tree.segments().size(), 100.0 * tree.boundingBoxFluidFraction());

    bool overlap = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--overlap") overlap = true;

    // Rebalance drill (--rebalance-every N [--rebalance-policy ...]): skewed
    // 4-rank assignment, reference vs live-rebalanced run, digest-invariance
    // and imbalance trajectory — see bench/rebalance_drill.h.
    const rebalance::RebalanceOptions rbOpt =
        rebalance::RebalanceOptions::fromArgs(argc, argv);
    if (rbOpt.any()) {
        const int drillRanks = 4;
        auto search = bf::findWeakScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1),
                                                   kCellsPerBlockEdge,
                                                   uint_t(drillRanks) * 16);
        search.forest.assignFluidCellWorkload(*phi);
        search.forest.balanceMorton(std::uint32_t(drillRanks));
        bench::skewAssignment(search.forest, std::uint32_t(drillRanks));
        const uint_t drillSteps = 4 * uint_t(rbOpt.every);
        const auto drill = bench::runRebalanceDrill(search.forest, search.blocks, *phi,
                                                    drillRanks, rbOpt, drillSteps, overlap);
        if (!metricsPath.empty()) {
            {
                std::ofstream os(metricsPath, std::ios::binary);
                if (!os) {
                    std::fprintf(stderr, "cannot open '%s' for writing\n",
                                 metricsPath.c_str());
                    return 1;
                }
                obs::json::Writer w(os);
                w.beginObject();
                w.kv("benchmark", "fig7_weak_vascular");
                bench::writeRebalanceJson(w, drill, rbOpt);
                w.endObject();
                os << '\n';
            }
            if (!obs::validateMetricsJson(metricsPath, {"benchmark", "rebalance"}))
                return 1;
            std::printf("wrote metrics JSON: %s\n", metricsPath.c_str());
        }
        return 0;
    }

    // Self-healing drill (--recover [--kill-rank R] [--kill-step S] ...):
    // reference vs kill-and-heal vs transient-faults runs on a 4-rank
    // vascular partition — see bench/recovery_drill.h.
    const recover::RecoveryOptions rcOpt = recover::RecoveryOptions::fromArgs(argc, argv);
    if (rcOpt.enabled) {
        int killRank = 2;
        std::uint64_t killStep = 13;
        for (int i = 1; i + 1 < argc; ++i) {
            if (std::string(argv[i]) == "--kill-rank") killRank = std::atoi(argv[i + 1]);
            if (std::string(argv[i]) == "--kill-step")
                killStep = std::uint64_t(std::atoll(argv[i + 1]));
        }
        const int drillRanks = 4;
        const uint_t drillSteps = uint_t(3 * rcOpt.buddyEvery);
        auto search = bf::findWeakScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1),
                                                   kCellsPerBlockEdge,
                                                   uint_t(drillRanks) * 16);
        search.forest.assignFluidCellWorkload(*phi);
        search.forest.balanceMorton(std::uint32_t(drillRanks));
        const auto drill = bench::runRecoveryDrill(search.forest, search.blocks, *phi,
                                                   drillRanks, rcOpt, drillSteps,
                                                   killRank, killStep);
        if (!metricsPath.empty()) {
            {
                std::ofstream os(metricsPath, std::ios::binary);
                if (!os) {
                    std::fprintf(stderr, "cannot open '%s' for writing\n",
                                 metricsPath.c_str());
                    return 1;
                }
                obs::json::Writer w(os);
                w.beginObject();
                w.kv("benchmark", "fig7_weak_vascular");
                bench::writeRecoveryJson(w, drill, rcOpt);
                w.endObject();
                os << '\n';
            }
            if (!obs::validateMetricsJson(metricsPath, {"benchmark", "recovery"}))
                return 1;
            std::printf("wrote metrics JSON: %s\n", metricsPath.c_str());
        }
        const bool ok = drill.healedDigestMatches() && drill.recoveries > 0 &&
                        drill.transientRecoveries == 0 && drill.transientRetries > 0 &&
                        drill.transientDigestMatches();
        return ok ? 0 : 1;
    }

    std::printf("\nreal virtual-rank runs (target 2 blocks/rank, %u^3 blocks, TRT%s):\n",
                kCellsPerBlockEdge, overlap ? ", overlapped comm schedule" : "");
    std::printf("%6s %9s %12s %11s %8s\n", "ranks", "blocks", "fluid cells",
                "MFLUPS/rank", "comm%");
    std::vector<RealRunRecord> records;
    // Under a checkpoint/restart drill only the largest world runs (the
    // checkpoint file is per-invocation; three worlds would clobber it).
    const sim::CheckpointOptions ckptOpt = sim::CheckpointOptions::fromArgs(argc, argv);
    if (ckptOpt.any())
        records.push_back(realRun(*phi, 8, overlap, ckptOpt));
    else
        for (int ranks : {2, 4, 8}) records.push_back(realRun(*phi, ranks, overlap));

    std::printf("\nexact partitionings across scales (fluid fraction rises with the "
                "block fit):\n");
    std::vector<VascularPoint> points;
    for (uint_t procs : {64u, 256u, 1024u, 4096u, 16384u}) {
        points.push_back(partitionAt(*phi, procs));
        const auto& p = points.back();
        std::printf("  %6llu processes: %6llu blocks, dx=%.5f, fluid fraction %5.1f%%, "
                    "imbalance %.2f\n",
                    (unsigned long long)p.processes, (unsigned long long)p.blocks, p.dx,
                    100.0 * p.fluidFraction, p.imbalance);
    }

    modelCurves(points);

    std::printf("\npaper anchors: fluid fraction and MFLUPS/core rise together with the "
                "core count\n(Figure 7a/b); largest run 1,033,660,569,847 fluid cells at "
                "dx = 1.276 um\n(one fifth of a red blood cell), 1.25 time steps/s on "
                "458,752 cores.\n");

    if (!metricsPath.empty()) {
        {
            std::ofstream os(metricsPath, std::ios::binary);
            if (!os) {
                std::fprintf(stderr, "cannot open '%s' for writing\n", metricsPath.c_str());
                return 1;
            }
            obs::json::Writer w(os);
            w.beginObject();
            w.kv("benchmark", "fig7_weak_vascular");
            w.key("runs").beginArray();
            for (const RealRunRecord& r : records) {
                w.beginObject();
                w.kv("ranks", r.ranks).kv("blocks", std::uint64_t(r.blocks));
                w.kv("fluid_cells", r.fluidCells);
                w.kv("mflups_per_rank", r.mflupsPerRank);
                w.kv("comm_fraction", r.commFraction);
                auto counterSum = [&](const char* name) -> std::uint64_t {
                    auto it = r.metrics.counters.find(name);
                    return it == r.metrics.counters.end() ? 0 : it->second.sum;
                };
                w.kv("bytes_sent", counterSum("comm.bytesSent"));
                w.kv("bytes_received", counterSum("comm.bytesReceived"));
                auto gaugeAvg = [&](const char* name) -> double {
                    auto it = r.metrics.gauges.find(name);
                    return it == r.metrics.gauges.end() ? 0.0 : it->second.avg();
                };
                w.kv("perf.predicted_mlups", gaugeAvg("perf.predicted_mlups"));
                w.kv("perf.efficiency", gaugeAvg("perf.efficiency"));
                // Zero outside a --recover drill; present so downstream
                // gates can --require the key family unconditionally.
                w.kv("recover.attempts", gaugeAvg("recover.attempts"));
                w.kv("recover.retries", gaugeAvg("recover.retries"));
                w.key("phases");
                obs::writePhasesJson(w, r.phases);
                w.endObject();
            }
            w.endArray();
            w.key("partitionings").beginArray();
            for (const auto& p : points) {
                w.beginObject();
                w.kv("processes", std::uint64_t(p.processes));
                w.kv("blocks", std::uint64_t(p.blocks));
                w.kv("fluid_fraction", p.fluidFraction);
                w.kv("imbalance", p.imbalance);
                w.kv("dx", double(p.dx));
                w.endObject();
            }
            w.endArray();
            w.endObject();
            os << '\n';
        }
        if (!obs::validateMetricsJson(metricsPath, {"benchmark", "runs", "partitionings"}))
            return 1;
        std::printf("\nwrote metrics JSON: %s\n", metricsPath.c_str());
    }
    return 0;
}
