/// Tests for the scenario service (walb::serve) and the generalized
/// sub-communicator beneath it: dense renumbering and hub collectives over
/// a sparse member subset, per-generation tag isolation of stale frames
/// (exercised under FaultyComm delay/duplicate plans), the deterministic
/// multi-tenant JobQueue, and the end-to-end acceptance properties —
/// preempt-and-resume bit-exactness on random voxel geometries and a
/// 4-rank fault drill where a gang member dies mid-job, the job is
/// requeued from its checkpoint and still reaches the run-alone digest.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "recover/GangRecovery.h"
#include "serve/JobQueue.h"
#include "serve/Scenario.h"
#include "serve/ServeDriver.h"
#include "vmpi/FaultyComm.h"
#include "vmpi/ReliableComm.h"
#include "vmpi/SubComm.h"
#include "vmpi/Tags.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using namespace std::chrono_literals;

std::string scratchDir(const std::string& name) {
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::create_directories(dir);
    return dir;
}

// ---- SubComm: dense renumbering over a sparse member subset ----------------

TEST(SubCommTest, DenseNumberingAndHubCollectivesOverSubset) {
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& base) {
        if (base.rank() == 0 || base.rank() == 2) return; // not members
        vmpi::SubComm sub(base, {1, 3}, /*generation=*/1);
        sub.setRecvDeadline(2000ms);
        EXPECT_EQ(sub.size(), 2);
        EXPECT_EQ(sub.rank(), base.rank() == 1 ? 0 : 1);
        EXPECT_EQ(sub.parentRank(0), 1);
        EXPECT_EQ(sub.parentRank(1), 3);
        EXPECT_EQ(sub.subRankOf(3), 1);
        EXPECT_EQ(sub.subRankOf(2), -1); // non-member

        // Broadcast from the hub reaches the other member.
        std::vector<std::uint8_t> msg =
            sub.rank() == 0 ? std::vector<std::uint8_t>{7, 8, 9}
                            : std::vector<std::uint8_t>{};
        sub.broadcast(msg, 0);
        EXPECT_EQ(msg, (std::vector<std::uint8_t>{7, 8, 9}));

        // Allreduce over sub ranks only: 10^0 + 10^1.
        std::uint64_t v[1] = {sub.rank() == 0 ? 1ull : 10ull};
        sub.allreduce(std::span<std::uint64_t>(v, 1), vmpi::ReduceOp::Sum);
        EXPECT_EQ(v[0], 11u);

        // Allgatherv keeps sub-rank order.
        const std::vector<std::uint8_t> mine{std::uint8_t(100 + sub.rank())};
        const auto parts = sub.allgatherv(mine);
        ASSERT_EQ(parts.size(), 2u);
        EXPECT_EQ(parts[0], (std::vector<std::uint8_t>{100}));
        EXPECT_EQ(parts[1], (std::vector<std::uint8_t>{101}));

        sub.barrier();
        // Point-to-point uses SUB ranks; the error surface carries parent
        // ranks, which the recovery path depends on — covered below.
        if (sub.rank() == 0) {
            sub.send(1, 5, {42});
        } else {
            EXPECT_EQ(sub.recv(0, 5), (std::vector<std::uint8_t>{42}));
        }
    });
}

TEST(SubCommTest, GenerationShiftIsolatesStaleFrames) {
    // Two attempts (generations) between the same two ranks. The wire
    // delays generation 1's frame until after generation 2's was sent, and
    // duplicates generation 2's frame — in a tag-shared world both would
    // leak across attempts; with the generation shift each frame can only
    // ever match its own attempt's receives.
    constexpr int kTag = 5; // sub-side tag, shifted per generation on the wire
    vmpi::FaultPlan plan;
    {
        vmpi::FaultPlan::MessageFault delay;
        delay.action = vmpi::FaultPlan::Action::Delay;
        delay.srcRank = 0;
        delay.tag = kTag + 1 * vmpi::tags::kEpochTagStride;
        delay.delayBySends = 1;
        plan.messageFaults.push_back(delay);
        vmpi::FaultPlan::MessageFault dup;
        dup.action = vmpi::FaultPlan::Action::Duplicate;
        dup.srcRank = 0;
        dup.tag = kTag + 2 * vmpi::tags::kEpochTagStride;
        plan.messageFaults.push_back(dup);
    }
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& base) {
        vmpi::FaultyComm faulty(base, plan);
        vmpi::SubComm gen1(faulty, {0, 1}, 1);
        vmpi::SubComm gen2(faulty, {0, 1}, 2);
        gen1.setRecvDeadline(2000ms);
        if (faulty.rank() == 0) {
            gen1.send(1, kTag, {0xA1}); // held back by the delay rule
            gen2.send(1, kTag, {0xB2}); // delivered (and duplicated); releases A1
        } else {
            // Generation 2 sees ONLY its own frame, even though the stale
            // generation-1 frame is in flight on the same sub-side tag.
            EXPECT_EQ(gen2.recv(0, kTag), (std::vector<std::uint8_t>{0xB2}));
            // The delayed frame arrives on generation 1's shifted tag.
            EXPECT_EQ(gen1.recv(0, kTag), (std::vector<std::uint8_t>{0xA1}));
            // No residue leaks into generation 1...
            std::vector<std::uint8_t> raw;
            EXPECT_FALSE(gen1.tryRecv(0, kTag, raw));
            // ...while the duplicate stayed pinned to generation 2.
            EXPECT_TRUE(gen2.tryRecv(0, kTag, raw));
            EXPECT_EQ(raw, (std::vector<std::uint8_t>{0xB2}));
        }
    });
}

TEST(SubCommTest, ErrorsCarryParentRanks) {
    // A deadline inside the sub must name the PARENT rank of the silent
    // peer — that is what recoverGang translates back into the pool space.
    vmpi::ThreadCommWorld::launch(3, [&](vmpi::Comm& base) {
        if (base.rank() == 0) return;
        vmpi::SubComm sub(base, {1, 2}, 3);
        sub.setRecvDeadline(100ms);
        if (sub.rank() == 1) {
            try {
                sub.recv(0, 6); // rank 1 (parent) never sends
                FAIL() << "expected a deadline CommError";
            } catch (const vmpi::CommError& e) {
                EXPECT_EQ(e.kind, vmpi::CommError::Kind::DeadlineExceeded);
                EXPECT_EQ(e.peer, 1); // parent rank space
            }
        }
    });
}

// ---- JobQueue: deterministic multi-tenant ordering --------------------------

serve::JobSpec quickSpec(const std::string& name, int priority = 0,
                         std::uint64_t release = 0,
                         const std::string& tenant = "default") {
    serve::JobSpec s;
    s.name = name;
    s.priority = priority;
    s.releaseAfterCompleted = release;
    s.tenant = tenant;
    return s;
}

TEST(JobQueueTest, PriorityFirstThenFifoWithinClass) {
    serve::JobQueue q;
    const auto a = q.push(quickSpec("a", 0));
    const auto b = q.push(quickSpec("b", 5));
    const auto c = q.push(quickSpec("c", 5));
    const auto d = q.push(quickSpec("d", 0));
    EXPECT_EQ(q.claim(0), b); // highest priority, lowest id
    EXPECT_EQ(q.claim(0), c);
    EXPECT_EQ(q.claim(0), a); // FIFO within the 0-class
    EXPECT_EQ(q.claim(0), d);
    EXPECT_FALSE(q.claim(0).has_value());
}

TEST(JobQueueTest, ReleaseAfterCompletedGatesEligibility) {
    serve::JobQueue q;
    const auto late = q.push(quickSpec("late", 9, /*release=*/2));
    const auto now1 = q.push(quickSpec("now1"));
    const auto now2 = q.push(quickSpec("now2"));
    EXPECT_EQ(q.claim(q.completedCount()), now1); // late not yet released
    q.complete(now1, 1, 1);
    EXPECT_EQ(q.claim(q.completedCount()), now2);
    q.complete(now2, 2, 1);
    EXPECT_EQ(q.bestQueuedPriority(q.completedCount()), 9);
    EXPECT_EQ(q.claim(q.completedCount()), late);
}

TEST(JobQueueTest, TenantQuotaSkipsAndPreemptTriggerExcludesBlocked) {
    serve::JobQueue q;
    q.setTenantQuota("acme", 1);
    const auto a1 = q.push(quickSpec("a1", 8, 0, "acme"));
    const auto a2 = q.push(quickSpec("a2", 8, 0, "acme"));
    const auto b1 = q.push(quickSpec("b1", 0, 0, "other"));
    EXPECT_EQ(q.claim(0), a1);
    // acme is at quota: a2 is skipped in favor of the other tenant, and a
    // quota-blocked job must NOT look like a preemption trigger.
    EXPECT_EQ(q.bestQueuedPriority(0), 0);
    EXPECT_EQ(q.claim(0), b1);
    EXPECT_FALSE(q.claim(0).has_value());
    q.complete(a1, 1, 1);
    EXPECT_EQ(q.claim(q.completedCount()), a2);
}

TEST(JobQueueTest, RequeueKeepsIdAndFifoPlace) {
    serve::JobQueue q;
    const auto a = q.push(quickSpec("a"));
    const auto b = q.push(quickSpec("b"));
    EXPECT_EQ(q.claim(0), a);
    q.requeue(a, /*preempted=*/true);
    // Same id, same FIFO place: the requeued job outranks the younger one.
    EXPECT_EQ(q.claim(0), a);
    EXPECT_EQ(q.record(a).attempts, 2);
    EXPECT_EQ(q.record(a).preemptions, 1);
    EXPECT_EQ(q.record(a).requeues, 1);
    q.requeue(a, /*preempted=*/false);
    EXPECT_EQ(q.record(a).preemptions, 1); // failure requeue, not preemption
    EXPECT_EQ(q.record(a).requeues, 2);
    EXPECT_EQ(q.claim(0), a);
    q.complete(a, 7, 4);
    EXPECT_EQ(q.claim(1), b);
    q.complete(b, 8, 4);
    EXPECT_TRUE(q.allCompleted());
}

// ---- end-to-end fleet properties -------------------------------------------

serve::JobSpec voxelSpec(const std::string& name, std::uint64_t seed,
                         std::uint64_t steps) {
    serve::JobSpec s;
    s.name = name;
    s.kind = serve::ScenarioKind::Voxel;
    s.voxelSeed = seed;
    s.steps = steps;
    return s;
}

TEST(ServeTest, FleetMatchesSerialBaselineOnVoxelGeometries) {
    const std::string dir = scratchDir("serve_fleet");
    std::vector<serve::JobSpec> jobs;
    for (std::uint64_t seed = 1; seed <= 5; ++seed)
        jobs.push_back(voxelSpec("voxel" + std::to_string(seed), seed, 10));

    serve::ServeOptions opt;
    opt.gangSize = 2;
    opt.chunkSteps = 4;
    opt.checkpointEvery = 4;
    opt.checkpointDir = dir;
    opt.recvDeadline = 500ms;
    serve::ServeReport report;
    vmpi::ThreadCommWorld::launch(3, [&](vmpi::Comm& base) {
        const auto rep = serve::ServeDriver::run(base, opt, jobs);
        if (base.rank() == 0) report = rep;
    });

    ASSERT_EQ(report.completed, jobs.size());
    EXPECT_EQ(report.gangs, 1);
    EXPECT_EQ(report.ranksLost, 0);
    for (const auto& rec : report.jobs) {
        ASSERT_EQ(rec.state, serve::JobState::Completed);
        EXPECT_EQ(rec.digest, serve::ServeDriver::runAlone(rec.spec, dir))
            << rec.spec.name;
    }
    // Per-tenant accounting saw every job.
    ASSERT_EQ(report.tenants.count("default"), 1u);
    EXPECT_EQ(report.tenants.at("default").jobs, jobs.size());
}

TEST(ServeTest, PreemptAndResumeIsBitExact) {
    const std::string dir = scratchDir("serve_preempt");
    // Two 1-rank gangs. Background jobs of very different lengths occupy
    // both; the completion of the short one releases two urgent jobs at
    // once, so the second can only start by preempting the long-running
    // background — which must later resume from its checkpoint and still
    // reach the run-alone digest.
    std::vector<serve::JobSpec> jobs;
    jobs.push_back(voxelSpec("bg_short", 11, 16));
    jobs.push_back(voxelSpec("bg_long", 12, 160));
    for (int i = 0; i < 2; ++i) {
        auto urgent = voxelSpec("urgent" + std::to_string(i), 20 + std::uint64_t(i), 8);
        urgent.priority = 5;
        urgent.releaseAfterCompleted = 1;
        jobs.push_back(std::move(urgent));
    }

    serve::ServeOptions opt;
    opt.gangSize = 1;
    opt.chunkSteps = 4;
    opt.checkpointEvery = 8;
    opt.checkpointDir = dir;
    opt.recvDeadline = 500ms;
    serve::ServeReport report;
    vmpi::ThreadCommWorld::launch(3, [&](vmpi::Comm& base) {
        const auto rep = serve::ServeDriver::run(base, opt, jobs);
        if (base.rank() == 0) report = rep;
    });

    ASSERT_EQ(report.completed, jobs.size());
    EXPECT_GE(report.preemptions, 1u);
    const auto& bgLong = report.jobs[1];
    EXPECT_EQ(bgLong.spec.name, "bg_long");
    EXPECT_GE(bgLong.preemptions, 1);
    EXPECT_GE(bgLong.attempts, 2);
    for (const auto& rec : report.jobs) {
        ASSERT_EQ(rec.state, serve::JobState::Completed);
        EXPECT_EQ(rec.digest, serve::ServeDriver::runAlone(rec.spec, dir))
            << rec.spec.name;
    }
}

TEST(ServeTest, FaultDrillRequeuesKilledJobWithUnchangedDigest) {
    const std::string dir = scratchDir("serve_kill");
    // Dispatcher + one gang of 3. The gang LEADER is killed mid-job: the
    // two survivors must agree on the death, the new leader reports the
    // failure with the survivor list, and the job is rerun from its last
    // checkpoint on the shrunken gang — same digest as run alone.
    std::vector<serve::JobSpec> jobs;
    for (std::uint64_t seed = 21; seed <= 23; ++seed)
        jobs.push_back(voxelSpec("kill" + std::to_string(seed), seed, 16));

    serve::ServeOptions opt;
    opt.gangSize = 3;
    opt.chunkSteps = 4;
    opt.checkpointEvery = 4;
    opt.checkpointDir = dir;
    opt.recvDeadline = 250ms;
    opt.agreement.window = 800ms;

    vmpi::FaultPlan plan;
    plan.killRank = 1;   // the gang leader
    plan.killAtStep = 20; // cumulative serve step: mid second job

    serve::ServeReport report;
    std::atomic<int> selfDeaths{0};
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& base) {
        vmpi::FaultyComm faulty(base, plan);
        vmpi::ReliableComm reliable(faulty);
        serve::ServeOptions mine = opt;
        mine.stepProbe = [&faulty](std::uint64_t cum) { faulty.beginStep(cum); };
        const auto rep = serve::ServeDriver::run(reliable, mine, jobs);
        if (base.rank() == 0) report = rep;
        if (base.rank() == plan.killRank) ++selfDeaths;
    });

    EXPECT_EQ(selfDeaths.load(), 1); // the doomed rank exited its loop quietly
    ASSERT_EQ(report.completed, jobs.size());
    EXPECT_GE(report.failedAttempts, 1u);
    EXPECT_EQ(report.ranksLost, 1);
    bool sawRequeue = false;
    for (const auto& rec : report.jobs) {
        ASSERT_EQ(rec.state, serve::JobState::Completed);
        sawRequeue = sawRequeue || rec.requeues > 0;
        EXPECT_EQ(rec.digest, serve::ServeDriver::runAlone(rec.spec, dir))
            << rec.spec.name;
    }
    EXPECT_TRUE(sawRequeue);
}

} // namespace
} // namespace walb
