/// Tests for the lattice field data structures: layouts, strides, ghost
/// layers, swapping, and the flag field.

#include <gtest/gtest.h>

#include "field/Field.h"
#include "field/FlagField.h"

namespace walb::field {
namespace {

class FieldLayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(FieldLayoutTest, SizesAndGhostLayers) {
    Field<double> f(4, 5, 6, 19, GetParam(), 0.0, 2);
    EXPECT_EQ(f.xSize(), 4);
    EXPECT_EQ(f.ySize(), 5);
    EXPECT_EQ(f.zSize(), 6);
    EXPECT_EQ(f.fSize(), 19u);
    EXPECT_EQ(f.ghostLayers(), 2);
    EXPECT_EQ(f.xAllocSize(), 8);
    EXPECT_EQ(f.allocCells(), std::size_t(8 * 9 * 10 * 19));
}

TEST_P(FieldLayoutTest, GetSetRoundTripIncludingGhost) {
    Field<double> f(3, 3, 3, 2, GetParam(), 0.0, 1);
    double v = 0;
    f.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        f.get(x, y, z, 0) = v;
        f.get(x, y, z, 1) = -v;
        v += 1.0;
    });
    v = 0;
    f.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        EXPECT_DOUBLE_EQ(f.get(x, y, z, 0), v);
        EXPECT_DOUBLE_EQ(f.get(x, y, z, 1), -v);
        v += 1.0;
    });
}

TEST_P(FieldLayoutTest, DistinctAddressesForAllSlots) {
    Field<int> f(3, 2, 2, 3, GetParam(), 0, 1);
    // Write a unique value everywhere; any stride aliasing would clobber.
    int v = 1;
    f.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (cell_idx_t ff = 0; ff < 3; ++ff) f.get(x, y, z, ff) = v++;
    });
    v = 1;
    bool ok = true;
    f.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (cell_idx_t ff = 0; ff < 3; ++ff) ok = ok && (f.get(x, y, z, ff) == v++);
    });
    EXPECT_TRUE(ok);
}

TEST_P(FieldLayoutTest, SwapDataIsO1AndExchangesContents) {
    Field<double> a(4, 4, 4, 2, GetParam(), 1.0, 1);
    Field<double> b(4, 4, 4, 2, GetParam(), 2.0, 1);
    const double* pa = a.data();
    const double* pb = b.data();
    a.swapDataWith(b);
    EXPECT_EQ(a.data(), pb);
    EXPECT_EQ(b.data(), pa);
    EXPECT_DOUBLE_EQ(a.get(0, 0, 0, 0), 2.0);
    EXPECT_DOUBLE_EQ(b.get(0, 0, 0, 0), 1.0);
}

TEST_P(FieldLayoutTest, CopyConstructorDeepCopies) {
    Field<double> a(2, 2, 2, 1, GetParam(), 3.5, 1);
    Field<double> b(a);
    b.get(0, 0, 0, 0) = -1.0;
    EXPECT_DOUBLE_EQ(a.get(0, 0, 0, 0), 3.5);
    EXPECT_DOUBLE_EQ(b.get(1, 1, 1, 0), 3.5);
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, FieldLayoutTest,
                         ::testing::Values(Layout::fzyx, Layout::zyxf),
                         [](const auto& tinfo) {
                             return tinfo.param == Layout::fzyx ? "SoA" : "AoS";
                         });

TEST(Field, SoAHasUnitXStrideAndContiguousDirectionSlabs) {
    Field<double> f(5, 4, 3, 19, Layout::fzyx, 0.0, 1);
    EXPECT_EQ(f.xStride(), 1);
    EXPECT_EQ(f.fStride(), 7 * 6 * 5);
    // Consecutive x cells of one direction are adjacent in memory.
    EXPECT_EQ(f.dataAt(1, 0, 0, 4) - f.dataAt(0, 0, 0, 4), 1);
}

TEST(Field, AoSHasUnitFStride) {
    Field<double> f(5, 4, 3, 19, Layout::zyxf, 0.0, 1);
    EXPECT_EQ(f.fStride(), 1);
    EXPECT_EQ(f.xStride(), 19);
    EXPECT_EQ(f.dataAt(0, 0, 0, 1) - f.dataAt(0, 0, 0, 0), 1);
}

TEST(Field, DataIsCacheLineAligned) {
    Field<double> f(7, 3, 3, 19, Layout::fzyx, 0.0, 1);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.data()) % kCacheLineBytes, 0u);
}

TEST(Field, InteriorIntervalMatchesSizes) {
    Field<double> f(4, 5, 6, 1, Layout::fzyx, 0.0, 2);
    EXPECT_EQ(f.interior(), CellInterval(0, 0, 0, 3, 4, 5));
    EXPECT_EQ(f.allocRegion(), CellInterval(-2, -2, -2, 5, 6, 7));
}

TEST(FlagField, RegisterAndQueryFlags) {
    FlagField ff(4, 4, 4, 1);
    const flag_t fluid = ff.registerFlag("fluid");
    const flag_t wall = ff.registerFlag("wall");
    EXPECT_NE(fluid, wall);
    EXPECT_EQ(ff.registerFlag("fluid"), fluid); // idempotent
    EXPECT_EQ(ff.flag("wall"), wall);

    ff.addFlag(1, 1, 1, fluid);
    ff.addFlag(1, 1, 1, wall);
    EXPECT_TRUE(ff.isFlagSet(1, 1, 1, fluid));
    EXPECT_TRUE(ff.isFlagSet(1, 1, 1, wall));
    ff.removeFlag(1, 1, 1, wall);
    EXPECT_FALSE(ff.isFlagSet(1, 1, 1, wall));
    EXPECT_TRUE(ff.isFlagSet(1, 1, 1, fluid));
}

TEST(FlagField, CountCountsInteriorOnly) {
    FlagField ff(3, 3, 3, 1);
    const flag_t fluid = ff.registerFlag("fluid");
    ff.addFlag(0, 0, 0, fluid);
    ff.addFlag(2, 2, 2, fluid);
    ff.addFlag(-1, 0, 0, fluid); // ghost, must not count
    EXPECT_EQ(ff.count(fluid), 2u);
}

TEST(FlagField, EightFlagsFitOneByte) {
    FlagField ff(2, 2, 2);
    for (int i = 0; i < 8; ++i) ff.registerFlag("f" + std::to_string(i));
    EXPECT_EQ(ff.flag("f7"), 128);
}

} // namespace
} // namespace walb::field
