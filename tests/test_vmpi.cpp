/// Tests for the virtual message-passing layer: point-to-point semantics,
/// collectives, the BufferSystem neighbor exchange, and typed wrappers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "vmpi/BufferSystem.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb::vmpi {
namespace {

TEST(SerialComm, SelfSendRecv) {
    SerialComm comm;
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    sendObject(comm, 0, 5, std::uint64_t(42));
    EXPECT_EQ(recvObject<std::uint64_t>(comm, 0, 5), 42u);
}

TEST(SerialComm, TryRecvReturnsFalseWhenEmpty) {
    SerialComm comm;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(comm.tryRecv(0, 1, out));
    comm.send(0, 1, {1, 2, 3});
    EXPECT_TRUE(comm.tryRecv(0, 1, out));
    EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(SerialComm, CollectivesAreIdentity) {
    SerialComm comm;
    EXPECT_DOUBLE_EQ(allreduceSum(comm, 3.5), 3.5);
    const std::vector<std::uint8_t> mine{9, 8};
    const auto gathered = comm.allgatherv(mine);
    ASSERT_EQ(gathered.size(), 1u);
    EXPECT_EQ(gathered[0], mine);
}

class ThreadCommTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCommTest, RanksAndSize) {
    const int n = GetParam();
    std::atomic<int> sum{0};
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        EXPECT_EQ(comm.size(), n);
        sum += comm.rank();
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST_P(ThreadCommTest, RingSendRecv) {
    const int n = GetParam();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        const int next = (comm.rank() + 1) % n;
        const int prev = (comm.rank() + n - 1) % n;
        sendObject(comm, next, 1, std::uint64_t(comm.rank()));
        EXPECT_EQ(recvObject<std::uint64_t>(comm, prev, 1), std::uint64_t(prev));
    });
}

TEST_P(ThreadCommTest, TagsKeepMessagesApart) {
    const int n = GetParam();
    if (n < 2) GTEST_SKIP();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        if (comm.rank() == 0) {
            // Send two messages with different tags in "wrong" order.
            sendObject(comm, 1, 20, std::uint64_t(222));
            sendObject(comm, 1, 10, std::uint64_t(111));
        } else if (comm.rank() == 1) {
            // Receive by tag, not arrival order.
            EXPECT_EQ(recvObject<std::uint64_t>(comm, 0, 10), 111u);
            EXPECT_EQ(recvObject<std::uint64_t>(comm, 0, 20), 222u);
        }
    });
}

TEST_P(ThreadCommTest, MessagesWithSameTagArriveFifo) {
    const int n = GetParam();
    if (n < 2) GTEST_SKIP();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        if (comm.rank() == 0) {
            for (std::uint64_t i = 0; i < 50; ++i) sendObject(comm, 1, 7, i);
        } else if (comm.rank() == 1) {
            for (std::uint64_t i = 0; i < 50; ++i)
                EXPECT_EQ(recvObject<std::uint64_t>(comm, 0, 7), i);
        }
    });
}

TEST_P(ThreadCommTest, TryRecvIsNonBlocking) {
    // Documented contract: tryRecv returns immediately in all cases — false
    // on an empty mailbox (no wait, no throw, regardless of any configured
    // recvDeadline), true with the payload once the message is queued.
    const int n = GetParam();
    if (n < 2) GTEST_SKIP();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        if (comm.rank() == 1) {
            comm.setRecvDeadline(std::chrono::milliseconds(1));
            std::vector<std::uint8_t> out;
            const auto t0 = std::chrono::steady_clock::now();
            EXPECT_FALSE(comm.tryRecv(0, 42, out)); // nothing sent yet: instant
            const double waited =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                    .count();
            EXPECT_LT(waited, 0.5); // returned immediately, did not block
            comm.barrier();         // release rank 0's send
            // The message may still be in flight; poll (each call non-blocking).
            while (!comm.tryRecv(0, 42, out)) std::this_thread::yield();
            RecvBuffer rb(std::move(out));
            std::uint64_t v = 0;
            rb >> v;
            EXPECT_EQ(v, 99u);
        } else {
            // The barrier comes FIRST: rank 1's empty-mailbox probe above must
            // run before any message exists, so the send happens only after
            // every rank (including rank 1, post-probe) reached the barrier.
            comm.barrier();
            if (comm.rank() == 0) sendObject(comm, 1, 42, std::uint64_t(99));
        }
    });
}

TEST_P(ThreadCommTest, Broadcast) {
    const int n = GetParam();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        std::vector<double> data;
        if (comm.rank() == n - 1) data = {1.5, 2.5, 3.5};
        broadcastObject(comm, data, n - 1);
        EXPECT_EQ(data, (std::vector<double>{1.5, 2.5, 3.5}));
    });
}

TEST_P(ThreadCommTest, AllreduceSumMinMax) {
    const int n = GetParam();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        const double r = double(comm.rank());
        EXPECT_DOUBLE_EQ(allreduceSum(comm, r), double(n * (n - 1)) / 2.0);
        EXPECT_DOUBLE_EQ(allreduceMin(comm, r), 0.0);
        EXPECT_DOUBLE_EQ(allreduceMax(comm, r), double(n - 1));
        std::uint64_t u = uint_c(comm.rank()) + 1;
        EXPECT_EQ(allreduceSum(comm, u), uint_c(n) * uint_c(n + 1) / 2);
    });
}

TEST_P(ThreadCommTest, AllreduceVectorElementwise) {
    const int n = GetParam();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        std::vector<double> v{double(comm.rank()), -double(comm.rank()), 1.0};
        comm.allreduce(std::span<double>(v), ReduceOp::Sum);
        EXPECT_DOUBLE_EQ(v[0], double(n * (n - 1)) / 2.0);
        EXPECT_DOUBLE_EQ(v[1], -double(n * (n - 1)) / 2.0);
        EXPECT_DOUBLE_EQ(v[2], double(n));
    });
}

TEST_P(ThreadCommTest, Allgatherv) {
    const int n = GetParam();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        // Each rank contributes rank+1 bytes of value rank.
        std::vector<std::uint8_t> mine(std::size_t(comm.rank()) + 1,
                                       std::uint8_t(comm.rank()));
        const auto all = comm.allgatherv(mine);
        ASSERT_EQ(all.size(), std::size_t(n));
        for (int r = 0; r < n; ++r) {
            ASSERT_EQ(all[std::size_t(r)].size(), std::size_t(r) + 1);
            for (auto b : all[std::size_t(r)]) EXPECT_EQ(b, std::uint8_t(r));
        }
    });
}

TEST_P(ThreadCommTest, GathervOnlyRootReceives) {
    const int n = GetParam();
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        std::vector<std::uint8_t> mine{std::uint8_t(comm.rank())};
        const auto all = comm.gatherv(mine, 0);
        if (comm.rank() == 0) {
            ASSERT_EQ(all.size(), std::size_t(n));
            for (int r = 0; r < n; ++r) EXPECT_EQ(all[std::size_t(r)][0], std::uint8_t(r));
        } else {
            EXPECT_TRUE(all.empty());
        }
    });
}

TEST_P(ThreadCommTest, BarrierSeparatesPhases) {
    const int n = GetParam();
    std::atomic<int> phase1{0};
    std::atomic<bool> violated{false};
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        ++phase1;
        comm.barrier();
        if (phase1.load() != n) violated = true;
    });
    EXPECT_FALSE(violated.load());
}

TEST_P(ThreadCommTest, ExceptionInRankPropagates) {
    const int n = GetParam();
    if (n < 2) GTEST_SKIP();
    // Only rank 0 throws and no rank waits on collectives, so the world
    // still joins; the exception must surface on the launching thread.
    EXPECT_THROW(ThreadCommWorld::launch(n,
                                         [&](Comm& comm) {
                                             if (comm.rank() == 0)
                                                 throw std::runtime_error("rank failure");
                                         }),
                 std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ThreadCommTest, ::testing::Values(1, 2, 3, 8, 16));

TEST(BufferSystem, NeighborExchangeRoundTrip) {
    ThreadCommWorld::launch(4, [&](Comm& comm) {
        BufferSystem bs(comm, 3);
        const int n = comm.size();
        const int left = (comm.rank() + n - 1) % n;
        const int right = (comm.rank() + 1) % n;
        bs.setReceiverInfo({left, right});
        for (int round = 0; round < 3; ++round) {
            bs.sendBuffer(left) << std::uint64_t(100 * comm.rank() + 1);
            bs.sendBuffer(right) << std::uint64_t(100 * comm.rank() + 2);
            bs.exchange();
            auto& recv = bs.recvBuffers();
            ASSERT_EQ(recv.size(), 2u);
            std::uint64_t fromLeft = 0, fromRight = 0;
            recv.at(left) >> fromLeft;
            recv.at(right) >> fromRight;
            EXPECT_EQ(fromLeft, uint_c(100 * left + 2));
            EXPECT_EQ(fromRight, uint_c(100 * right + 1));
        }
    });
}

TEST(BufferSystem, EmptyBuffersAreDelivered) {
    ThreadCommWorld::launch(2, [&](Comm& comm) {
        BufferSystem bs(comm);
        bs.setReceiverInfo({1 - comm.rank()});
        if (comm.rank() == 0) bs.sendBuffer(1) << 7.0;
        else bs.sendBuffer(0); // empty
        bs.exchange();
        if (comm.rank() == 1) {
            double v = 0;
            bs.recvBuffers().at(0) >> v;
            EXPECT_DOUBLE_EQ(v, 7.0);
        } else {
            EXPECT_EQ(bs.recvBuffers().at(1).size(), 0u);
        }
    });
}

TEST(BufferSystem, TrafficCountersUnderSerialComm) {
    // Under SerialComm the only neighbor is the rank itself, so send- and
    // receive-side accounting must agree exactly.
    SerialComm comm;
    BufferSystem bs(comm);
    bs.setReceiverInfo({0});

    bs.sendBuffer(0) << std::uint64_t(7) << 2.5; // 8 + 8 bytes
    EXPECT_EQ(bs.totalSendBytes(), 16u);

    bs.exchange();
    EXPECT_EQ(bs.totalSendBytes(), 0u); // staged buffers were cleared
    EXPECT_EQ(bs.lastSendBytes(), 16u);
    EXPECT_EQ(bs.totalRecvBytes(), 16u);
    EXPECT_EQ(bs.lastRecvBytes(), bs.lastSendBytes());
    EXPECT_EQ(bs.lastSendMessages(), 1u);
    EXPECT_EQ(bs.lastRecvMessages(), 1u);

    // Second, smaller exchange: last* reflect only the newest exchange,
    // cumulative* accumulate across both.
    bs.sendBuffer(0) << std::uint8_t(1);
    bs.exchange();
    EXPECT_EQ(bs.lastSendBytes(), 1u);
    EXPECT_EQ(bs.totalRecvBytes(), 1u);
    EXPECT_EQ(bs.cumulativeSendBytes(), 17u);
    EXPECT_EQ(bs.cumulativeRecvBytes(), 17u);
    EXPECT_EQ(bs.cumulativeSendMessages(), 2u);
    EXPECT_EQ(bs.cumulativeRecvMessages(), 2u);

    bs.resetTrafficCounters();
    EXPECT_EQ(bs.lastSendBytes(), 0u);
    EXPECT_EQ(bs.totalRecvBytes(), 0u);
    EXPECT_EQ(bs.cumulativeSendBytes(), 0u);
    EXPECT_EQ(bs.cumulativeRecvMessages(), 0u);
}

TEST(BufferSystem, TrafficCountersUnderThreadComm) {
    // Ring of 4: every rank sends rank+1 doubles left and one u64 right, so
    // per-rank byte counts differ but the world-wide send and receive sums
    // must balance — globally no byte is lost or double-counted.
    const int n = 4;
    std::atomic<std::uint64_t> sentSum{0}, recvSum{0};
    std::atomic<std::uint64_t> sentMsgs{0}, recvMsgs{0};
    ThreadCommWorld::launch(n, [&](Comm& comm) {
        BufferSystem bs(comm, 9);
        const int left = (comm.rank() + n - 1) % n;
        const int right = (comm.rank() + 1) % n;
        bs.setReceiverInfo({left, right});
        for (int round = 0; round < 2; ++round) {
            for (int i = 0; i <= comm.rank(); ++i) bs.sendBuffer(left) << 1.0;
            bs.sendBuffer(right) << std::uint64_t(comm.rank());
            const std::size_t staged = bs.totalSendBytes();
            EXPECT_EQ(staged, 8u * uint_c(comm.rank() + 1) + 8u);
            bs.exchange();
            EXPECT_EQ(bs.lastSendBytes(), staged);
            // From the right neighbor we receive its left-bound doubles,
            // from the left neighbor its right-bound u64.
            EXPECT_EQ(bs.totalRecvBytes(), 8u * uint_c(right + 1) + 8u);
            EXPECT_EQ(bs.lastSendMessages(), 2u);
            EXPECT_EQ(bs.lastRecvMessages(), 2u);
        }
        sentSum += bs.cumulativeSendBytes();
        recvSum += bs.cumulativeRecvBytes();
        sentMsgs += bs.cumulativeSendMessages();
        recvMsgs += bs.cumulativeRecvMessages();
    });
    EXPECT_GT(sentSum.load(), 0u);
    EXPECT_EQ(sentSum.load(), recvSum.load());
    EXPECT_EQ(sentMsgs.load(), recvMsgs.load());
    EXPECT_EQ(sentMsgs.load(), uint_c(2 * 2 * n)); // 2 msgs x 2 rounds x n ranks
}

TEST(ThreadCommWorld, ReusableAcrossRuns) {
    ThreadCommWorld world(3);
    for (int i = 0; i < 3; ++i) {
        world.run([&](Comm& comm) {
            EXPECT_DOUBLE_EQ(allreduceSum(comm, 1.0), 3.0);
        });
    }
}

} // namespace
} // namespace walb::vmpi
