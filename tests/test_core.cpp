/// Tests for core utilities: Vector3, Cell/CellInterval, AABB, Random,
/// Buffer serialization and the compact low-byte encoding.

#include <gtest/gtest.h>

#include <sstream>

#include "core/AABB.h"
#include "core/BinaryIO.h"
#include "core/Buffer.h"
#include "core/Cell.h"
#include "core/Logging.h"
#include "core/Random.h"
#include "core/Timer.h"
#include "core/Vector3.h"

namespace walb {
namespace {

TEST(Vector3, Arithmetic) {
    Vec3 a(1, 2, 3), b(4, 5, 6);
    EXPECT_EQ(a + b, Vec3(5, 7, 9));
    EXPECT_EQ(b - a, Vec3(3, 3, 3));
    EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_EQ(-a, Vec3(-1, -2, -3));
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
}

TEST(Vector3, CrossProductIsOrthogonal) {
    Vec3 a(1, 2, 3), b(-2, 0.5, 4);
    const Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-14);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-14);
}

TEST(Vector3, LengthAndNormalize) {
    Vec3 v(3, 4, 0);
    EXPECT_DOUBLE_EQ(v.length(), 5.0);
    EXPECT_NEAR(v.normalized().length(), 1.0, 1e-15);
    EXPECT_EQ(Vec3(0, 0, 0).normalized(), Vec3(0, 0, 0));
}

TEST(CellInterval, SizesAndEmptiness) {
    CellInterval ci(0, 0, 0, 3, 1, 0);
    EXPECT_EQ(ci.xSize(), 4);
    EXPECT_EQ(ci.ySize(), 2);
    EXPECT_EQ(ci.zSize(), 1);
    EXPECT_EQ(ci.numCells(), 8u);
    EXPECT_FALSE(ci.empty());
    EXPECT_TRUE(CellInterval().empty());
    EXPECT_EQ(CellInterval().numCells(), 0u);
}

TEST(CellInterval, ContainsAndIntersect) {
    CellInterval a(0, 0, 0, 9, 9, 9), b(5, 5, 5, 14, 14, 14);
    EXPECT_TRUE(a.contains(Cell{0, 0, 0}));
    EXPECT_TRUE(a.contains(Cell{9, 9, 9}));
    EXPECT_FALSE(a.contains(Cell{10, 0, 0}));
    const CellInterval i = a.intersect(b);
    EXPECT_EQ(i, CellInterval(5, 5, 5, 9, 9, 9));
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(CellInterval(20, 20, 20, 30, 30, 30)));
}

TEST(CellInterval, ForEachVisitsAllCellsInMemoryOrder) {
    CellInterval ci(1, 2, 3, 2, 3, 4);
    std::vector<Cell> visited;
    ci.forEach([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) { visited.push_back({x, y, z}); });
    ASSERT_EQ(visited.size(), ci.numCells());
    EXPECT_EQ(visited.front(), (Cell{1, 2, 3}));
    EXPECT_EQ(visited.back(), (Cell{2, 3, 4}));
    EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));
}

TEST(CellInterval, ExpandedAndShifted) {
    CellInterval ci(0, 0, 0, 1, 1, 1);
    EXPECT_EQ(ci.expanded(1), CellInterval(-1, -1, -1, 2, 2, 2));
    EXPECT_EQ(ci.shifted(Cell{1, 2, 3}), CellInterval(1, 2, 3, 2, 3, 4));
}

TEST(AABB, BasicGeometry) {
    AABB b(0, 0, 0, 2, 4, 6);
    EXPECT_DOUBLE_EQ(b.volume(), 48.0);
    EXPECT_EQ(b.center(), Vec3(1, 2, 3));
    EXPECT_TRUE(b.contains(Vec3(1, 1, 1)));
    EXPECT_FALSE(b.contains(Vec3(2, 1, 1))); // half-open upper boundary
    EXPECT_TRUE(b.containsClosed(Vec3(2, 4, 6)));
}

TEST(AABB, SqrDistance) {
    AABB b(0, 0, 0, 1, 1, 1);
    EXPECT_DOUBLE_EQ(b.sqrDistance(Vec3(0.5, 0.5, 0.5)), 0.0);
    EXPECT_DOUBLE_EQ(b.sqrDistance(Vec3(2, 0.5, 0.5)), 1.0);
    EXPECT_DOUBLE_EQ(b.sqrDistance(Vec3(2, 2, 0.5)), 2.0);
}

TEST(AABB, SpheresMatchPaperEarlyOutGeometry) {
    AABB b(0, 0, 0, 2, 2, 2);
    EXPECT_NEAR(b.circumsphereRadius(), std::sqrt(3.0), 1e-14);
    EXPECT_DOUBLE_EQ(b.insphereRadius(), 1.0);
    // Insphere radius of a non-cubic box is half the smallest edge.
    EXPECT_DOUBLE_EQ(AABB(0, 0, 0, 4, 2, 8).insphereRadius(), 1.0);
}

TEST(AABB, Octants) {
    AABB b(0, 0, 0, 2, 2, 2);
    EXPECT_EQ(b.octant(0), AABB(0, 0, 0, 1, 1, 1));
    EXPECT_EQ(b.octant(7), AABB(1, 1, 1, 2, 2, 2));
    EXPECT_EQ(b.octant(1), AABB(1, 0, 0, 2, 1, 1));
    double vol = 0;
    for (unsigned c = 0; c < 8; ++c) vol += b.octant(c).volume();
    EXPECT_DOUBLE_EQ(vol, b.volume());
}

TEST(Random, DeterministicAcrossInstances) {
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Random, UniformRange) {
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        const real_t v = r.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Random, UniformIntInRangeAndRoughlyUniform) {
    Random r(99);
    std::array<int, 10> histo{};
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(10);
        ASSERT_LT(v, 10u);
        ++histo[v];
    }
    for (int h : histo) EXPECT_GT(h, 700); // expect ~1000 each
}

TEST(Buffer, RoundTripScalars) {
    SendBuffer sb;
    sb << std::int32_t(-42) << std::uint64_t(1ull << 60) << 3.25 << std::uint8_t(7) << true;
    RecvBuffer rb(sb.release());
    std::int32_t i = 0; std::uint64_t u = 0; double d = 0; std::uint8_t b = 0; bool f = false;
    rb >> i >> u >> d >> b >> f;
    EXPECT_EQ(i, -42);
    EXPECT_EQ(u, 1ull << 60);
    EXPECT_DOUBLE_EQ(d, 3.25);
    EXPECT_EQ(b, 7);
    EXPECT_TRUE(f);
    EXPECT_TRUE(rb.atEnd());
}

TEST(Buffer, RoundTripStringsAndVectors) {
    SendBuffer sb;
    sb << std::string("hello walb") << std::vector<double>{1.0, 2.5, -3.0}
       << std::vector<std::uint16_t>{1, 2, 65535};
    RecvBuffer rb(sb.release());
    std::string s; std::vector<double> vd; std::vector<std::uint16_t> vu;
    rb >> s >> vd >> vu;
    EXPECT_EQ(s, "hello walb");
    EXPECT_EQ(vd, (std::vector<double>{1.0, 2.5, -3.0}));
    EXPECT_EQ(vu, (std::vector<std::uint16_t>{1, 2, 65535}));
}

TEST(Buffer, CompactEncodingUsesExactlyRequestedBytes) {
    SendBuffer sb;
    sb.putCompact(65535, 2); // paper: 2-byte ranks for up to 65,536 processes
    EXPECT_EQ(sb.size(), 2u);
    sb.putCompact(1234567, 3);
    EXPECT_EQ(sb.size(), 5u);
    RecvBuffer rb(sb.release());
    EXPECT_EQ(rb.getCompact(2), 65535u);
    EXPECT_EQ(rb.getCompact(3), 1234567u);
}

TEST(Buffer, BytesNeededMatchesPaperRankExample) {
    EXPECT_EQ(bytesNeeded(0), 1u);
    EXPECT_EQ(bytesNeeded(255), 1u);
    EXPECT_EQ(bytesNeeded(256), 2u);
    EXPECT_EQ(bytesNeeded(65535), 2u); // 65,536 processes -> 2-byte ranks
    EXPECT_EQ(bytesNeeded(65536), 3u);
    EXPECT_EQ(bytesNeeded(500000), 3u); // half a million processes
    EXPECT_EQ(bytesNeeded(~0ull), 8u);
}

TEST(BinaryIO, FileRoundTrip) {
    SendBuffer sb;
    sb << std::string("block structure") << std::uint64_t(458752);
    const std::string path = testing::TempDir() + "/walb_binaryio_test.bin";
    ASSERT_TRUE(writeFile(path, sb));
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(readFile(path, bytes));
    RecvBuffer rb(std::move(bytes));
    std::string s; std::uint64_t n = 0;
    rb >> s >> n;
    EXPECT_EQ(s, "block structure");
    EXPECT_EQ(n, 458752u);
    std::remove(path.c_str());
}

TEST(Timer, MeasuresAndAccumulates) {
    Timer t;
    t.start();
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
    t.stop();
    EXPECT_GT(t.total(), 0.0);
    EXPECT_EQ(t.count(), 1u);
    t.addMeasurement(1.0);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_GE(t.max(), 1.0);
}

TEST(Timer, MergeAggregatePreservesCountAndExtremes) {
    Timer a;
    a.addMeasurement(1.0);
    a.addMeasurement(3.0);
    // Merging pre-aggregated stats must add totals/counts and combine
    // min/max instead of collapsing the remote timer into one
    // pseudo-measurement.
    a.mergeAggregate(/*total=*/6.0, /*count=*/4, /*mn=*/0.5, /*mx=*/2.5);
    EXPECT_DOUBLE_EQ(a.total(), 10.0);
    EXPECT_EQ(a.count(), 6u);
    EXPECT_DOUBLE_EQ(a.average(), 10.0 / 6.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.5);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Timer, MergeAggregateOfEmptyTimerIsNoOp) {
    Timer a;
    a.addMeasurement(2.0);
    Timer empty;
    a.mergeAggregate(empty.total(), empty.count(), empty.min(), empty.max());
    EXPECT_DOUBLE_EQ(a.total(), 2.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 2.0);
}

TEST(TimingPool, MergeIsExactOnMinMaxCountAvg) {
    TimingPool a, b;
    a["comm"].addMeasurement(1.0);
    a["comm"].addMeasurement(5.0);
    b["comm"].addMeasurement(0.25);
    b["comm"].addMeasurement(2.0);
    b["comm"].addMeasurement(2.75);
    b["boundary"].addMeasurement(4.0);

    a.merge(b);

    const Timer* comm = a.find("comm");
    ASSERT_NE(comm, nullptr);
    EXPECT_DOUBLE_EQ(comm->total(), 11.0);
    EXPECT_EQ(comm->count(), 5u); // was 2, not 3: counts add, not replace
    EXPECT_DOUBLE_EQ(comm->average(), 2.2);
    EXPECT_DOUBLE_EQ(comm->min(), 0.25); // true single-measurement minimum
    EXPECT_DOUBLE_EQ(comm->max(), 5.0);  // true single-measurement maximum

    // Phases only present in the merged-in pool appear verbatim.
    const Timer* boundary = a.find("boundary");
    ASSERT_NE(boundary, nullptr);
    EXPECT_DOUBLE_EQ(boundary->total(), 4.0);
    EXPECT_EQ(boundary->count(), 1u);
    EXPECT_DOUBLE_EQ(boundary->min(), 4.0);
    EXPECT_DOUBLE_EQ(boundary->max(), 4.0);
}

TEST(TimingPool, MergeEmptyPoolChangesNothing) {
    TimingPool a, empty;
    a["x"].addMeasurement(1.5);
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.grandTotal(), 1.5);
    EXPECT_EQ(a.find("x")->count(), 1u);
}

TEST(Logger, SetStreamCapturesOutput) {
    Logger& log = Logger::instance();
    std::ostringstream oss;
    log.setStream(&oss);
    WALB_LOG_INFO("hello " << 42);
    log.setStream(nullptr);
    EXPECT_EQ(oss.str(), "[INFO]  hello 42\n");
}

TEST(Logger, RankTagIsThreadLocalAndRemovable) {
    Logger& log = Logger::instance();
    std::ostringstream oss;
    log.setStream(&oss);
    Logger::setThreadRank(3);
    WALB_LOG_INFO("tagged");
    Logger::setThreadRank(-1);
    WALB_LOG_INFO("untagged");
    log.setStream(nullptr);
    EXPECT_EQ(oss.str(), "[rank 3][INFO]  tagged\n[INFO]  untagged\n");
    EXPECT_EQ(Logger::thisThreadRank(), -1);
}

TEST(Logger, ElapsedPrefixHasFixedWidthFormat) {
    Logger& log = Logger::instance();
    std::ostringstream oss;
    log.setStream(&oss);
    log.setShowElapsed(true);
    WALB_LOG_INFO("timed");
    log.setShowElapsed(false);
    log.setStream(nullptr);
    const std::string line = oss.str();
    // `[  12.345s][INFO]  timed` — 12-char elapsed prefix (`[` + %9.3f +
    // `s]`) in front of the level tag.
    ASSERT_GE(line.size(), 12u);
    EXPECT_EQ(line[0], '[');
    EXPECT_EQ(line.substr(10, 2), "s]");
    EXPECT_NE(line.find("[INFO]  timed"), std::string::npos);
    EXPECT_GE(log.elapsedSeconds(), 0.0);
}

TEST(Logger, ErrorMacroLogsAtErrorLevelEvenWhenQuiet) {
    Logger& log = Logger::instance();
    std::ostringstream oss;
    log.setStream(&oss);
    const LogLevel before = log.level();
    log.setLevel(LogLevel::Error); // suppress everything below Error
    WALB_LOG_INFO("should be dropped");
    WALB_LOG_ERROR("boom " << 7);
    log.setLevel(before);
    log.setStream(nullptr);
    EXPECT_EQ(oss.str(), "[ERROR] boom 7\n");
}

TEST(TimingPool, FractionsSumToOne) {
    TimingPool pool;
    pool["a"].addMeasurement(3.0);
    pool["b"].addMeasurement(1.0);
    EXPECT_DOUBLE_EQ(pool.grandTotal(), 4.0);
    EXPECT_DOUBLE_EQ(pool.fraction("a"), 0.75);
    EXPECT_DOUBLE_EQ(pool.fraction("b"), 0.25);
    EXPECT_DOUBLE_EQ(pool.fraction("missing"), 0.0);
}

} // namespace
} // namespace walb
