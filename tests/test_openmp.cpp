/// Hybrid-parallelism tests: with OpenMP enabled, the threaded sweeps must
/// produce bitwise-identical results regardless of the thread count (rows
/// write disjoint cells and perform identical arithmetic per cell).

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "lbm/KernelD3Q19Simd.h"
#include "lbm/Boundary.h"
#include "lbm/Sparse.h"

namespace walb::lbm {
namespace {

void fillState(PdfField& f) {
    f.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Vec3 u(0.02 * std::sin(0.2 * real_c(x + z)), -0.01 * std::cos(0.3 * real_c(y)),
                     0.015);
        for (uint_t a = 0; a < D3Q19::Q; ++a)
            f.get(x, y, z, cell_idx_c(a)) =
                equilibrium<D3Q19>(a, 1.0 + 0.01 * std::sin(real_c(x * y % 7)), u);
    });
}

#ifdef _OPENMP

TEST(OpenMP, DenseSweepIsThreadCountInvariant) {
    const cell_idx_t N = 20;
    PdfField src = makePdfField<D3Q19>(N, N, N);
    fillState(src);
    const TRT op = TRT::fromOmegaAndMagic(1.3);
    KernelD3Q19Simd<> kernel;

    const int maxThreads = omp_get_max_threads();
    omp_set_num_threads(1);
    PdfField dst1 = makePdfField<D3Q19>(N, N, N);
    kernel.sweep(src, dst1, op);

    omp_set_num_threads(std::max(4, maxThreads));
    PdfField dst4 = makePdfField<D3Q19>(N, N, N);
    kernel.sweep(src, dst4, op);
    omp_set_num_threads(maxThreads);

    dst1.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (uint_t a = 0; a < D3Q19::Q; ++a)
            ASSERT_EQ(dst1.get(x, y, z, cell_idx_c(a)), dst4.get(x, y, z, cell_idx_c(a)))
                << "thread-count-dependent result at " << x << ',' << y << ',' << z;
    });
}

TEST(OpenMP, IntervalSweepIsThreadCountInvariant) {
    const cell_idx_t N = 20;
    field::FlagField flags(N, N, N, 1);
    const auto fluid = flags.registerFlag(kFluidFlag);
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if ((x + 2 * y + 3 * z) % 5 != 0) flags.addFlag(x, y, z, fluid); // ragged runs
    });
    const FluidRunList runs = buildFluidRuns(flags, fluid);

    PdfField src = makePdfField<D3Q19>(N, N, N);
    fillState(src);
    const SRT op(1.6);
    KernelD3Q19Simd<> kernel;

    const int maxThreads = omp_get_max_threads();
    omp_set_num_threads(1);
    PdfField dst1 = makePdfField<D3Q19>(N, N, N);
    streamCollideIntervals(src, dst1, runs, op, kernel);

    omp_set_num_threads(std::max(4, maxThreads));
    PdfField dst4 = makePdfField<D3Q19>(N, N, N);
    streamCollideIntervals(src, dst4, runs, op, kernel);
    omp_set_num_threads(maxThreads);

    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (!flags.isFlagSet(x, y, z, fluid)) return;
        for (uint_t a = 0; a < D3Q19::Q; ++a)
            ASSERT_EQ(dst1.get(x, y, z, cell_idx_c(a)), dst4.get(x, y, z, cell_idx_c(a)));
    });
}

#else

TEST(OpenMP, CompiledWithoutOpenMP) {
    GTEST_SKIP() << "build has no OpenMP support; threaded-sweep invariance not testable";
}

#endif

} // namespace
} // namespace walb::lbm
