/// Dedicated boundary-condition tests: link-list construction, the hull
/// dilation operator, UBB momentum injection, pressure-BC density
/// imposition, and the mesh-color boundary assignment of paper §2.3.

#include <gtest/gtest.h>

#include "geometry/BoundarySetup.h"
#include "geometry/Primitives.h"
#include "lbm/Boundary.h"
#include "lbm/KernelD3Q19.h"

namespace walb::lbm {
namespace {

using field::FlagField;
using field::flag_t;

class BoundaryLinks : public ::testing::Test {
protected:
    BoundaryLinks() : flags(5, 5, 5, 1), masks(BoundaryFlags::registerOn(flags)) {}
    FlagField flags;
    BoundaryFlags masks;
};

TEST_F(BoundaryLinks, SingleFluidCellSurroundedByWalls) {
    // Fluid at the center, walls all around: one link per non-center
    // direction = 18 links.
    flags.addFlag(2, 2, 2, masks.fluid);
    for (uint_t a = 1; a < D3Q19::Q; ++a)
        flags.addFlag(2 + D3Q19::c[a][0], 2 + D3Q19::c[a][1], 2 + D3Q19::c[a][2],
                      masks.noSlip);
    BoundaryHandling<D3Q19> handling(flags, masks);
    EXPECT_EQ(handling.noSlipLinks().size(), 18u);
    EXPECT_EQ(handling.ubbLinks().size(), 0u);
    for (const auto& link : handling.noSlipLinks()) {
        // Each link's fluid cell is the center.
        EXPECT_EQ(link.boundary.x + D3Q19::c[link.dir][0], 2);
        EXPECT_EQ(link.boundary.y + D3Q19::c[link.dir][1], 2);
        EXPECT_EQ(link.boundary.z + D3Q19::c[link.dir][2], 2);
    }
}

TEST_F(BoundaryLinks, GhostBoundaryCellsGetLinksToo) {
    // Fluid cell at the edge of the block; the wall sits in the ghost
    // layer (it belongs to a neighboring block).
    flags.addFlag(0, 2, 2, masks.fluid);
    flags.addFlag(-1, 2, 2, masks.noSlip); // ghost cell
    BoundaryHandling<D3Q19> handling(flags, masks);
    ASSERT_EQ(handling.noSlipLinks().size(), 1u);
    EXPECT_EQ(handling.noSlipLinks()[0].boundary, (Cell{-1, 2, 2}));
}

TEST_F(BoundaryLinks, NoLinksBetweenNonAdjacentCells) {
    flags.addFlag(0, 0, 0, masks.fluid);
    flags.addFlag(4, 4, 4, masks.noSlip); // too far away
    BoundaryHandling<D3Q19> handling(flags, masks);
    EXPECT_EQ(handling.numLinks(), 0u);
}

TEST_F(BoundaryLinks, NoSlipWritesBouncedValueIntoBoundarySlot) {
    flags.addFlag(2, 2, 2, masks.fluid);
    flags.addFlag(2, 3, 2, masks.noSlip); // wall to the north
    BoundaryHandling<D3Q19> handling(flags, masks);

    PdfField pdfs = makePdfField<D3Q19>(5, 5, 5);
    initEquilibrium<D3Q19>(pdfs, 1.0, {0, 0, 0});
    // Mark the fluid cell's post-collision northbound PDF.
    const uint_t north = 1; // N in our ordering
    const uint_t south = D3Q19::inv[north];
    pdfs.get(2, 2, 2, cell_idx_c(north)) = 0.75;
    handling.apply(pdfs);
    // The wall's south slot (pointing back into the fluid) must hold the
    // bounced northbound value.
    EXPECT_DOUBLE_EQ(pdfs.get(2, 3, 2, cell_idx_c(south)), 0.75);
}

TEST_F(BoundaryLinks, UbbInjectsWallMomentum) {
    // Three fluid cells under a lid row moving in +x; the central lid cell
    // then has straight (S) and diagonal (SW, SE) links into the fluid.
    for (cell_idx_t x = 1; x <= 3; ++x) {
        flags.addFlag(x, 2, 2, masks.fluid);
        flags.addFlag(x, 3, 2, masks.ubb);
    }
    BoundaryHandling<D3Q19> handling(flags, masks);
    handling.setWallVelocity({0.1, 0, 0});

    PdfField pdfs = makePdfField<D3Q19>(5, 5, 5);
    initEquilibrium<D3Q19>(pdfs, 1.0, {0, 0, 0});
    handling.apply(pdfs);

    // Diagonal link with c = (1,-1,0) gains +6 w (e.u_w); (-1,-1,0) loses.
    const uint_t se = 10; // (1,-1,0)
    const uint_t sw = 9;  // (-1,-1,0)
    const real_t base = equilibrium<D3Q19>(D3Q19::inv[se], 1.0, {0, 0, 0});
    EXPECT_NEAR(pdfs.get(2, 3, 2, cell_idx_c(se)), base + 6 * D3Q19::w[se] * 0.1, 1e-15);
    EXPECT_NEAR(pdfs.get(2, 3, 2, cell_idx_c(sw)), base - 6 * D3Q19::w[sw] * 0.1, 1e-15);
    // Straight-down link (0,-1,0) is unaffected by an x-wall-velocity.
    const uint_t s = 2;
    EXPECT_DOUBLE_EQ(pdfs.get(2, 3, 2, cell_idx_c(s)),
                     equilibrium<D3Q19>(D3Q19::inv[s], 1.0, {0, 0, 0}));
}

TEST_F(BoundaryLinks, PressureImposesTargetDensity) {
    flags.addFlag(2, 2, 2, masks.fluid);
    flags.addFlag(2, 3, 2, masks.pressure);
    BoundaryHandling<D3Q19> handling(flags, masks);
    handling.setPressureDensity(1.05);

    PdfField pdfs = makePdfField<D3Q19>(5, 5, 5);
    initEquilibrium<D3Q19>(pdfs, 1.0, {0, 0, 0});
    handling.apply(pdfs);
    // Anti-bounce-back at rest: slot = -f_inv + 2 w rho_w. With f at
    // equilibrium(1.0, 0): slot = w (2*1.05 - 1).
    const uint_t south = 2;
    const real_t expected = D3Q19::w[south] * (2 * 1.05 - 1.0);
    EXPECT_NEAR(pdfs.get(2, 3, 2, cell_idx_c(south)), expected, 1e-14);
}

// ---- hull marking ------------------------------------------------------------

TEST(BoundaryHull, DilationMarksExactlyTheStencilNeighbors) {
    FlagField flags(7, 7, 7, 1);
    const auto masks = BoundaryFlags::registerOn(flags);
    const flag_t hull = flags.registerFlag("hull");
    flags.addFlag(3, 3, 3, masks.fluid); // single fluid cell
    markBoundaryHull<D3Q19>(flags, masks.fluid, 0, hull);
    // Exactly the 18 stencil neighbors are hull; nothing else.
    uint_t count = 0;
    flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (flags.isFlagSet(x, y, z, hull)) {
            ++count;
            const int dx = int(x - 3), dy = int(y - 3), dz = int(z - 3);
            bool isNeighbor = false;
            for (uint_t a = 1; a < D3Q19::Q; ++a)
                if (D3Q19::c[a][0] == dx && D3Q19::c[a][1] == dy && D3Q19::c[a][2] == dz)
                    isNeighbor = true;
            EXPECT_TRUE(isNeighbor) << "hull at non-stencil offset " << dx << ',' << dy
                                    << ',' << dz;
        }
    });
    EXPECT_EQ(count, 18u);
    EXPECT_FALSE(flags.isFlagSet(3, 3, 3, hull)) << "fluid cell must not become hull";
}

TEST(BoundaryHull, RespectsAlreadyOccupiedCells) {
    FlagField flags(5, 5, 5, 1);
    const auto masks = BoundaryFlags::registerOn(flags);
    const flag_t hull = flags.registerFlag("hull");
    flags.addFlag(2, 2, 2, masks.fluid);
    flags.addFlag(2, 3, 2, masks.ubb); // pre-assigned inflow
    markBoundaryHull<D3Q19>(flags, masks.fluid, masks.ubb, hull);
    EXPECT_FALSE(flags.isFlagSet(2, 3, 2, hull)) << "pre-colored cell was overwritten";
    EXPECT_TRUE(flags.isFlagSet(2, 1, 2, hull));
}

// ---- color-based assignment ---------------------------------------------------

TEST(ColorAssignment, TubeCapsBecomeInflowAndOutflow) {
    using namespace geometry;
    // A tube along x: inflow cap at x=0 (red), outflow at x=4 (green).
    TriangleMesh mesh = makeTubeMesh({0, 0, 0}, {4, 0, 0}, 1.0, 1.0, 16, true, true,
                                     kColorWall, kColorInflow, kColorOutflow);
    MeshDistance dist(mesh);

    const cell_idx_t N = 24;
    field::FlagField flags(N, N, N, 1);
    const auto masks = lbm::BoundaryFlags::registerOn(flags);
    const flag_t hull = flags.registerFlag("hull");
    const CellMapping mapping{AABB(-1, -2, -2, 5, 2, 2), 6.0 / N};
    voxelize(dist, flags, mapping, masks.fluid);
    ASSERT_GT(flags.count(masks.fluid), 50u);
    markBoundaryHull<D3Q19>(flags, masks.fluid, 0, hull);

    const auto stats = assignBoundaryConditionsFromColors(flags, masks, hull, dist, mapping);
    EXPECT_GT(stats.inflowCells, 0u);
    EXPECT_GT(stats.outflowCells, 0u);
    EXPECT_GT(stats.noSlipCells, stats.inflowCells);

    // Inflow cells cluster at low x, outflow at high x. Cap colors bleed
    // onto the first side ring of the tube tessellation (ring spacing
    // ~1.3), so the split point is generous.
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Vec3 p = mapping.cellCenter(x, y, z);
        if (flags.isFlagSet(x, y, z, masks.ubb)) { EXPECT_LT(p[0], 1.8); }
        if (flags.isFlagSet(x, y, z, masks.pressure)) { EXPECT_GT(p[0], 2.2); }
    });
}

} // namespace
} // namespace walb::lbm
