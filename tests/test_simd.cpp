/// SIMD abstraction tests: every backend must agree with scalar double
/// arithmetic element-wise, including FMA and unaligned access.

#include <gtest/gtest.h>

#include <array>

#include "core/Random.h"
#include "simd/Simd.h"

namespace walb::simd {
namespace {

template <typename V>
class SimdBackend : public ::testing::Test {};

#if defined(__AVX__)
using Backends = ::testing::Types<ScalarD, SseD, AvxD>;
#elif defined(__SSE2__)
using Backends = ::testing::Types<ScalarD, SseD>;
#else
using Backends = ::testing::Types<ScalarD>;
#endif
TYPED_TEST_SUITE(SimdBackend, Backends);

TYPED_TEST(SimdBackend, LoadStoreRoundTrip) {
    using V = TypeParam;
    alignas(64) double in[8] = {1.5, -2.25, 3.0, 0.125, 7.75, -0.5, 2.0, 9.0};
    alignas(64) double out[8] = {};
    for (std::size_t i = 0; i + V::width <= 8; i += V::width)
        V::load(in + i).store(out + i);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], in[i]);
}

TYPED_TEST(SimdBackend, UnalignedLoadStore) {
    using V = TypeParam;
    double buffer[12];
    for (int i = 0; i < 12; ++i) buffer[i] = i * 1.25;
    double out[12] = {};
    // Deliberately offset by one double from any 64-byte boundary.
    V::loadu(buffer + 1).storeu(out + 1);
    for (std::size_t i = 1; i <= V::width; ++i) EXPECT_EQ(out[i], buffer[i]);
}

TYPED_TEST(SimdBackend, ArithmeticMatchesScalar) {
    using V = TypeParam;
    Random rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        alignas(64) double a[4], b[4], out[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-10, 10);
            b[i] = rng.uniform(0.1, 10); // avoid division blow-ups
        }
        const V va = V::loadu(a), vb = V::loadu(b);
        (va + vb).storeu(out);
        for (std::size_t i = 0; i < V::width; ++i) EXPECT_EQ(out[i], a[i] + b[i]);
        (va - vb).storeu(out);
        for (std::size_t i = 0; i < V::width; ++i) EXPECT_EQ(out[i], a[i] - b[i]);
        (va * vb).storeu(out);
        for (std::size_t i = 0; i < V::width; ++i) EXPECT_EQ(out[i], a[i] * b[i]);
        (va / vb).storeu(out);
        for (std::size_t i = 0; i < V::width; ++i) EXPECT_EQ(out[i], a[i] / b[i]);
    }
}

TYPED_TEST(SimdBackend, Set1Broadcasts) {
    using V = TypeParam;
    alignas(64) double out[4] = {};
    V::set1(3.375).storeu(out);
    for (std::size_t i = 0; i < V::width; ++i) EXPECT_EQ(out[i], 3.375);
}

TYPED_TEST(SimdBackend, FmaMatchesScalarWithinUlp) {
    using V = TypeParam;
    Random rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        alignas(64) double a[4], b[4], c[4], out[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-5, 5);
            b[i] = rng.uniform(-5, 5);
            c[i] = rng.uniform(-5, 5);
        }
        fma(V::loadu(a), V::loadu(b), V::loadu(c)).storeu(out);
        for (std::size_t i = 0; i < V::width; ++i) {
            // Fused rounding may differ by one ulp from a*b+c.
            EXPECT_NEAR(out[i], a[i] * b[i] + c[i], 1e-14 * (1.0 + std::abs(out[i])));
        }
    }
}

TEST(SimdDispatch, BestBackendIsWidestAvailable) {
#if defined(__AVX__)
    EXPECT_EQ(BestD::width, 4u);
    EXPECT_STREQ(backendName<BestD>(), "AVX2");
#elif defined(__SSE2__)
    EXPECT_EQ(BestD::width, 2u);
#else
    EXPECT_EQ(BestD::width, 1u);
#endif
}

} // namespace
} // namespace walb::simd
