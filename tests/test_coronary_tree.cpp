/// Tests for the synthetic coronary tree generator: determinism, Murray's
/// law, containment, sparsity, and the cross-validation between the mesh
/// pipeline and the exact implicit signed distance.

#include <gtest/gtest.h>

#include <map>

#include "geometry/CoronaryTree.h"
#include "geometry/Voxelizer.h"

namespace walb::geometry {
namespace {

CoronaryTreeParams smallParams(std::uint64_t seed = 42) {
    CoronaryTreeParams p;
    p.seed = seed;
    p.bounds = AABB(0, 0, 0, 1, 1, 1);
    p.rootRadius = 0.04;
    p.minRadius = 0.008;
    p.maxDepth = 9;
    return p;
}

TEST(CoronaryTree, DeterministicForSameSeed) {
    const auto a = CoronaryTree::generate(smallParams(7));
    const auto b = CoronaryTree::generate(smallParams(7));
    ASSERT_EQ(a.segments().size(), b.segments().size());
    for (std::size_t i = 0; i < a.segments().size(); ++i) {
        EXPECT_EQ(a.segments()[i].a, b.segments()[i].a);
        EXPECT_EQ(a.segments()[i].b, b.segments()[i].b);
        EXPECT_EQ(a.segments()[i].radius, b.segments()[i].radius);
    }
}

TEST(CoronaryTree, DifferentSeedsDiffer) {
    const auto a = CoronaryTree::generate(smallParams(1));
    const auto b = CoronaryTree::generate(smallParams(2));
    bool differs = a.segments().size() != b.segments().size();
    for (std::size_t i = 0; !differs && i < a.segments().size(); ++i)
        differs = !(a.segments()[i].b == b.segments()[i].b);
    EXPECT_TRUE(differs);
}

TEST(CoronaryTree, TreeTopologyIsValid) {
    const auto tree = CoronaryTree::generate(smallParams());
    const auto& segs = tree.segments();
    ASSERT_GT(segs.size(), 10u);
    EXPECT_EQ(segs[0].parent, -1);
    std::map<std::int32_t, int> childCount;
    for (std::size_t i = 1; i < segs.size(); ++i) {
        ASSERT_GE(segs[i].parent, 0);
        ASSERT_LT(std::size_t(segs[i].parent), segs.size());
        EXPECT_GT(segs[i].depth, segs[std::size_t(segs[i].parent)].depth);
        ++childCount[segs[i].parent];
        // Child starts at (slightly inside) the parent's end.
        const auto& parent = segs[std::size_t(segs[i].parent)];
        EXPECT_LT((segs[i].a - parent.b).length(), parent.radius + 1e-12);
    }
    for (const auto& [parent, count] : childCount) {
        EXPECT_LE(count, 2) << "more than a bifurcation at segment " << parent;
        EXPECT_FALSE(segs[std::size_t(parent)].leaf);
    }
    EXPECT_GT(tree.numLeaves(), 2u);
}

TEST(CoronaryTree, MurraysLawHolds) {
    const auto tree = CoronaryTree::generate(smallParams());
    const auto& segs = tree.segments();
    std::map<std::int32_t, std::vector<std::size_t>> children;
    for (std::size_t i = 1; i < segs.size(); ++i) children[segs[i].parent].push_back(i);
    int bifurcations = 0;
    for (const auto& [parent, kids] : children) {
        if (kids.size() != 2) continue;
        ++bifurcations;
        const real_t r0 = segs[std::size_t(parent)].radius;
        const real_t r1 = segs[kids[0]].radius, r2 = segs[kids[1]].radius;
        EXPECT_NEAR(r1 * r1 * r1 + r2 * r2 * r2, r0 * r0 * r0, 1e-12 * r0 * r0 * r0);
        EXPECT_LT(r1, r0);
        EXPECT_LT(r2, r0);
    }
    EXPECT_GT(bifurcations, 5);
}

TEST(CoronaryTree, VesselsStayInsideBounds) {
    const auto tree = CoronaryTree::generate(smallParams());
    const AABB& bounds = tree.params().bounds;
    for (const auto& s : tree.segments()) {
        for (const Vec3& p : {s.a, s.b}) {
            EXPECT_GE(p[0], bounds.min()[0] - 1e-12);
            EXPECT_GE(p[1], bounds.min()[1] - 1e-12);
            EXPECT_GE(p[2], bounds.min()[2] - 1e-12);
            EXPECT_LE(p[0], bounds.max()[0] + 1e-12);
            EXPECT_LE(p[1], bounds.max()[1] + 1e-12);
            EXPECT_LE(p[2], bounds.max()[2] + 1e-12);
        }
    }
}

TEST(CoronaryTree, SparseLikeTheCTADataset) {
    // The paper's geometry covers ~0.3% of its bounding box; the generator
    // must stay in that sparse regime (well under 5%).
    const auto tree = CoronaryTree::generate(smallParams());
    EXPECT_LT(tree.boundingBoxFluidFraction(), 0.05);
    EXPECT_GT(tree.boundingBoxFluidFraction(), 0.0005);
}

TEST(CoronaryTree, ImplicitDistanceMatchesSegmentGeometry) {
    const auto tree = CoronaryTree::generate(smallParams());
    const auto phi = tree.implicitDistance();
    for (const auto& s : tree.segments()) {
        const Vec3 mid = (s.a + s.b) * real_c(0.5);
        EXPECT_LT(phi->signedDistance(mid), -0.5 * s.radius); // centerline inside
    }
    // A corner of the box far from the inlet should be outside.
    EXPECT_GT(phi->signedDistance(tree.params().bounds.max() - Vec3(0.01, 0.01, 0.01)), 0.0);
}

TEST(CoronaryTree, SurfaceMeshHasInflowAndOutflowColors) {
    const auto tree = CoronaryTree::generate(smallParams());
    const TriangleMesh mesh = tree.surfaceMesh(96);
    std::size_t inflow = 0, outflow = 0, wall = 0;
    for (std::size_t v = 0; v < mesh.numVertices(); ++v) {
        if (mesh.color(v) == kColorInflow) ++inflow;
        else if (mesh.color(v) == kColorOutflow) ++outflow;
        else ++wall;
    }
    EXPECT_GT(inflow, 0u);
    EXPECT_GT(outflow, inflow); // many outlets, one inlet
    EXPECT_GT(wall, outflow);   // walls dominate
}

TEST(CoronaryTree, MeshAndImplicitVoxelizationsAgree) {
    // Voxelize a moderate region with both representations; they must agree
    // except in a small band near bifurcations (overlapping tubes).
    auto params = smallParams();
    params.maxDepth = 4;     // keep the mesh small for the octree
    params.rootRadius = 0.07; // fat vessels: several cells across at N=40
    params.minRadius = 0.02;
    const auto tree = CoronaryTree::generate(params);
    const auto implicit = tree.implicitDistance();
    TriangleMesh mesh = tree.surfaceMesh(80);
    MeshDistance meshDist(mesh);

    const cell_idx_t N = 40;
    const real_t dx = 1.0 / real_c(N);
    field::FlagField fromMesh(N, N, N, 0), fromImplicit(N, N, N, 0);
    const auto a = fromMesh.registerFlag("fluid");
    const auto b = fromImplicit.registerFlag("fluid");
    const CellMapping mapping{params.bounds, dx};
    voxelize(meshDist, fromMesh, mapping, a);
    voxelize(*implicit, fromImplicit, mapping, b);

    const uint_t implicitCount = fromImplicit.count(b);
    ASSERT_GT(implicitCount, 500u);
    uint_t disagree = 0, deepDisagree = 0;
    fromMesh.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if ((fromMesh.get(x, y, z) != 0) != (fromImplicit.get(x, y, z) != 0)) {
            ++disagree;
            // "Deep" disagreement: the cell is more than 1.5 dx away from
            // the implicit surface, i.e. not a legitimate representation
            // difference in the surface band, but a sign error.
            if (std::abs(implicit->signedDistance(mapping.cellCenter(x, y, z))) > 1.5 * dx)
                ++deepDisagree;
        }
    });
    // The extracted isosurface tracks the implicit surface within one grid
    // cell: only a thin band may disagree, and nothing deep inside/outside.
    EXPECT_LT(disagree, implicitCount / 10)
        << disagree << " band cells of " << implicitCount;
    EXPECT_LE(deepDisagree, std::max<uint_t>(2, implicitCount / 200))
        << deepDisagree << " deep disagreements of " << implicitCount;
}

} // namespace
} // namespace walb::geometry
