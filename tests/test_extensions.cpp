/// Tests for the framework extensions beyond the paper's core scope:
/// momentum-exchange force evaluation, per-link wall-velocity profiles,
/// distributed checkpoint/restart, and VTK output.

#include <gtest/gtest.h>

#include <fstream>

#include "io/VtkOutput.h"
#include "lbm/Force.h"
#include "sim/DistributedSimulation.h"
#include "sim/SingleBlockSimulation.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using lbm::TRT;
using sim::SingleBlockSimulation;

// ---- momentum exchange force ------------------------------------------------

TEST(BoundaryForce, CouetteShearStressMatchesAnalytic) {
    // Couette flow: the wall force per unit area is the shear stress
    // tau = rho * nu * U / H. Compare the momentum-exchange force on the
    // stationary bottom wall with the analytic value.
    const cell_idx_t H = 10, NX = 8, NZ = 8;
    SingleBlockSimulation::Config cfg;
    cfg.xSize = NX;
    cfg.ySize = H + 2;
    cfg.zSize = NZ;
    cfg.periodicX = cfg.periodicZ = true;
    SingleBlockSimulation simulation(cfg);
    auto& ff = simulation.flags();
    const auto& masks = simulation.masks();
    ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == 0) ff.addFlag(x, y, z, masks.noSlip);
        else if (y == H + 1) ff.addFlag(x, y, z, masks.ubb);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize();
    const real_t U = 0.02;
    simulation.boundary().setWallVelocity({U, 0, 0});
    const TRT op = TRT::fromOmegaAndMagic(1.2);
    simulation.run(4000, op);

    // Evaluate the force right after a boundary sweep.
    simulation.boundary().apply(simulation.pdfs());
    const Vec3 force =
        lbm::computeBoundaryForce<lbm::D3Q19>(simulation.boundary(), simulation.pdfs());

    // The bottom (no-slip) wall is dragged in +x, the moving lid feels -x;
    // the measured force sums both and the lid's UBB momentum input, so we
    // compare magnitudes per wall by symmetry: total tangential force on
    // both walls has magnitude ~0 (balanced), so instead rebuild a handler
    // for the bottom wall only.
    field::FlagField bottomOnly(NX, H + 2, NZ, 1);
    auto bm = lbm::BoundaryFlags::registerOn(bottomOnly);
    ff.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (ff.isFlagSet(x, y, z, masks.fluid)) bottomOnly.addFlag(x, y, z, bm.fluid);
        if (ff.isFlagSet(x, y, z, masks.noSlip)) bottomOnly.addFlag(x, y, z, bm.noSlip);
    });
    lbm::BoundaryHandling<lbm::D3Q19> bottom(bottomOnly, bm);
    bottom.apply(simulation.pdfs());
    const Vec3 bottomForce =
        lbm::computeBoundaryForce<lbm::D3Q19>(bottom, simulation.pdfs());

    const real_t area = real_c(NX * NZ);
    // Tangential: the viscous shear stress tau = rho nu U / H.
    const real_t tauAnalytic = op.viscosity() * U / real_c(H); // rho = 1
    EXPECT_NEAR(bottomForce[0] / area, tauAnalytic, 0.05 * tauAnalytic);
    // Normal: the fluid pushes the bottom wall down with the hydrostatic
    // pressure p = rho cs^2 = 1/3.
    EXPECT_NEAR(bottomForce[1] / area, -lbm::D3Q19::csSqr, 1e-6);
    EXPECT_NEAR(bottomForce[2] / area, 0.0, 1e-6);
    (void)force;
}

TEST(BoundaryForce, RestFluidExertsNoTangentialForce) {
    SingleBlockSimulation::Config cfg;
    cfg.xSize = cfg.ySize = cfg.zSize = 10;
    SingleBlockSimulation simulation(cfg);
    auto& ff = simulation.flags();
    const auto& masks = simulation.masks();
    ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (x == 0 || x == 9 || y == 0 || y == 9 || z == 0 || z == 9)
            ff.addFlag(x, y, z, masks.noSlip);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize();
    simulation.run(10, TRT::fromOmegaAndMagic(1.0));
    simulation.boundary().apply(simulation.pdfs());
    const Vec3 f =
        lbm::computeBoundaryForce<lbm::D3Q19>(simulation.boundary(), simulation.pdfs());
    // Fluid at rest in a closed box: forces balance to zero.
    EXPECT_NEAR(f[0], 0.0, 1e-12);
    EXPECT_NEAR(f[1], 0.0, 1e-12);
    EXPECT_NEAR(f[2], 0.0, 1e-12);
}

// ---- wall velocity profiles ----------------------------------------------------

TEST(VelocityProfile, ParabolicInletIsImposed) {
    // Drive a channel purely by a parabolic UBB inlet; the downstream flow
    // approaches the imposed profile shape.
    const cell_idx_t L = 24, H = 10;
    SingleBlockSimulation::Config cfg;
    cfg.xSize = L + 2;
    cfg.ySize = H + 2;
    cfg.zSize = 3;
    cfg.periodicZ = true;
    SingleBlockSimulation simulation(cfg);
    auto& ff = simulation.flags();
    const auto& masks = simulation.masks();
    const auto outlet = ff.registerFlag("pressureOut");
    ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == 0 || y == H + 1) ff.addFlag(x, y, z, masks.noSlip);
        else if (x == 0) ff.addFlag(x, y, z, masks.ubb);
        else if (x == L + 1) ff.addFlag(x, y, z, outlet);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize();

    const real_t uMax = 0.03;
    simulation.boundary().setWallVelocityProfile([&](const Cell& c) {
        const real_t y = real_c(c.y) - real_c(0.5); // wall plane at y=0
        const real_t h = real_c(H);
        return Vec3(4 * uMax * y * (h - y) / (h * h), 0, 0);
    });
    lbm::BoundaryFlags outletMasks{masks.fluid, 0, 0, outlet};
    lbm::BoundaryHandling<lbm::D3Q19> outletHandling(ff, outletMasks);
    outletHandling.setPressureDensity(1.0);

    for (int step = 0; step < 6000; ++step) {
        outletHandling.apply(simulation.pdfs());
        simulation.run(1, TRT::fromOmegaAndMagic(1.0));
    }
    // Centerline fastest, near-wall slowest, profile roughly parabolic.
    const real_t uMid = simulation.velocity(L / 2, (H + 1) / 2, 1)[0];
    const real_t uNearWall = simulation.velocity(L / 2, 1, 1)[0];
    EXPECT_GT(uMid, 3 * uNearWall);
    EXPECT_NEAR(uMid, uMax, 0.25 * uMax);
    // Quarter-height point of an ideal parabola carries 3/4 of the peak.
    const real_t uQuarter = simulation.velocity(L / 2, (H + 2) / 4, 1)[0];
    EXPECT_NEAR(uQuarter / uMid, 0.75, 0.12);
}

// ---- checkpoint / restart -------------------------------------------------------

TEST(Checkpoint, RestartReproducesTheRun) {
    constexpr cell_idx_t N = 16;
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, N, N, N);
    cfg.rootBlocksX = cfg.rootBlocksY = cfg.rootBlocksZ = 2;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = N / 2;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(4);

    auto flagInit = [](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                       const bf::BlockForest::Block& block,
                       const geometry::CellMapping& mapping) {
        (void)block;
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > N || p[1] > N || p[2] > N)
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.y == N - 1) flags.addFlag(x, y, z, masks.ubb);
            else if (g.x == 0 || g.x == N - 1 || g.y == 0 || g.z == 0 || g.z == N - 1)
                flags.addFlag(x, y, z, masks.noSlip);
            else flags.addFlag(x, y, z, masks.fluid);
        });
    };

    const std::string path = testing::TempDir() + "/walb_checkpoint.bin";
    const TRT op = TRT::fromOmegaAndMagic(1.3);
    Vec3 continuous, restarted;

    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.run(15, op);
        ASSERT_TRUE(simulation.saveCheckpoint(path));
        simulation.run(15, op);
        const Vec3 u = simulation.gatherCellVelocity({N / 2, N / 2, N / 2});
        if (comm.rank() == 0) continuous = u;
    });

    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.04, 0, 0});
        ASSERT_TRUE(simulation.loadCheckpoint(path));
        simulation.run(15, op);
        const Vec3 u = simulation.gatherCellVelocity({N / 2, N / 2, N / 2});
        if (comm.rank() == 0) restarted = u;
    });

    EXPECT_EQ(continuous[0], restarted[0]); // bitwise: restart is exact
    EXPECT_EQ(continuous[1], restarted[1]);
    EXPECT_EQ(continuous[2], restarted[2]);
    std::remove(path.c_str());
}

TEST(Checkpoint, LoadFailsCleanlyOnMissingFile) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8, 8, 8);
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(1);
    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(
        comm, setup,
        [](field::FlagField& flags, const lbm::BoundaryFlags& masks, const auto&,
           const auto&) {
            flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
                flags.addFlag(x, y, z, masks.fluid);
            });
        });
    EXPECT_FALSE(simulation.loadCheckpoint("/nonexistent/path/checkpoint.bin"));
}

// ---- VTK output ------------------------------------------------------------------

TEST(VtkOutput, ImageFileIsWellFormedAndComplete) {
    io::VtkImageWriter writer(4, 3, 2, 0.5, {1, 2, 3});
    writer.addScalar("rho", [](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        return real_c(x + 10 * y + 100 * z);
    });
    writer.addVector("vel", [](cell_idx_t x, cell_idx_t, cell_idx_t) {
        return Vec3(real_c(x), 0, -real_c(x));
    });
    const std::string path = testing::TempDir() + "/walb_out.vti";
    ASSERT_TRUE(writer.write(path));

    std::ifstream is(path);
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("<VTKFile type=\"ImageData\""), std::string::npos);
    EXPECT_NE(content.find("WholeExtent=\"0 4 0 3 0 2\""), std::string::npos);
    EXPECT_NE(content.find("Name=\"rho\""), std::string::npos);
    EXPECT_NE(content.find("NumberOfComponents=\"3\""), std::string::npos);
    EXPECT_NE(content.find("Spacing=\"0.5 0.5 0.5\""), std::string::npos);
    // Last scalar value (x=3,y=2,z=1): 3 + 20 + 100 = 123.
    EXPECT_NE(content.find("123"), std::string::npos);
    std::remove(path.c_str());
}

TEST(VtkOutput, MeshFileContainsGeometryAndColors) {
    geometry::TriangleMesh mesh;
    mesh.addVertex({0, 0, 0}, geometry::kColorInflow);
    mesh.addVertex({1, 0, 0});
    mesh.addVertex({0, 1, 0});
    mesh.addTriangle(0, 1, 2);
    const std::string path = testing::TempDir() + "/walb_mesh.vtk";
    ASSERT_TRUE(io::writeVtkMesh(path, mesh));
    std::ifstream is(path);
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("POINTS 3 double"), std::string::npos);
    EXPECT_NE(content.find("POLYGONS 1 4"), std::string::npos);
    EXPECT_NE(content.find("COLOR_SCALARS"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace walb
