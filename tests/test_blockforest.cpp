/// Block-forest tests: BlockID octree paths, setup construction with
/// geometry exclusion, load balancing, the compact file format, the
/// distributed (parallel) construction path, and the per-process memory
/// invariant of the distributed BlockForest.

#include <gtest/gtest.h>

#include "blockforest/BlockForest.h"
#include "blockforest/SetupBlockForest.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb::bf {
namespace {

TEST(BlockID, RootChildParentRoundTrip) {
    const BlockID root = BlockID::root(17);
    EXPECT_EQ(root.level(), 0u);
    EXPECT_EQ(root.rootIndex(), 17u);
    const BlockID c5 = root.child(5);
    EXPECT_EQ(c5.level(), 1u);
    EXPECT_EQ(c5.octant(), 5u);
    EXPECT_EQ(c5.parent(), root);
    const BlockID c53 = c5.child(3);
    EXPECT_EQ(c53.level(), 2u);
    EXPECT_EQ(c53.octant(), 3u);
    EXPECT_EQ(c53.parent(), c5);
}

TEST(BlockID, OrderingAndDistinctness) {
    const BlockID a = BlockID::root(0).child(0);
    const BlockID b = BlockID::root(0).child(1);
    const BlockID c = BlockID::root(1);
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);
    EXPECT_LT(a, c);
    // Children of different parents are distinct.
    EXPECT_NE(BlockID::root(0).child(7), BlockID::root(1).child(7));
}

TEST(BlockID, CompactSerializationRoundTrip) {
    SendBuffer sb;
    const BlockID id = BlockID::root(300).child(7).child(2).child(5);
    id.serialize(sb, 65535);
    // root: 2 bytes (<= 65535), level: 1, path (3 levels = 9 bits): 2 bytes.
    EXPECT_EQ(sb.size(), 5u);
    RecvBuffer rb(sb.release());
    EXPECT_EQ(BlockID::deserialize(rb, 65535), id);
}

SetupConfig denseConfig(std::uint32_t bx, std::uint32_t by, std::uint32_t bz,
                        std::uint32_t cells = 8) {
    SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, real_c(bx), real_c(by), real_c(bz));
    cfg.rootBlocksX = bx;
    cfg.rootBlocksY = by;
    cfg.rootBlocksZ = bz;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = cells;
    return cfg;
}

TEST(SetupBlockForest, DenseCreationKeepsAllBlocks) {
    const auto forest = SetupBlockForest::create(denseConfig(4, 3, 2));
    EXPECT_EQ(forest.numBlocks(), 24u);
    for (const auto& b : forest.blocks()) {
        EXPECT_TRUE(b.fullyInside);
        EXPECT_EQ(b.workload, 512u);
    }
    EXPECT_NEAR(forest.config().dx(), 1.0 / 8.0, 1e-15);
}

TEST(SetupBlockForest, RefinementLevelMultipliesBlocks) {
    auto cfg = denseConfig(2, 2, 2);
    cfg.refinementLevel = 1; // every root block -> 8 children
    const auto forest = SetupBlockForest::create(cfg);
    EXPECT_EQ(forest.numBlocks(), 64u);
    for (const auto& b : forest.blocks()) {
        EXPECT_EQ(b.id.level(), 1u);
        EXPECT_LT(b.id.rootIndex(), 8u);
    }
    // All 64 ids distinct.
    std::set<BlockID> ids;
    for (const auto& b : forest.blocks()) ids.insert(b.id);
    EXPECT_EQ(ids.size(), 64u);
}

TEST(SetupBlockForest, BlockBoxesTileTheDomain) {
    const auto forest = SetupBlockForest::create(denseConfig(3, 2, 2));
    real_t volume = 0;
    for (const auto& b : forest.blocks()) volume += b.aabb.volume();
    EXPECT_NEAR(volume, forest.config().domain.volume(), 1e-12);
}

TEST(SetupBlockForest, NeighborsMatchGridAdjacency) {
    const auto forest = SetupBlockForest::create(denseConfig(3, 3, 3));
    // The center block has 26 neighbors; a corner block has 7.
    for (std::uint32_t i = 0; i < forest.numBlocks(); ++i) {
        const auto& b = forest.blocks()[i];
        const auto neighbors = forest.neighborsOf(i);
        const bool corner = (b.gridPos.x == 0 || b.gridPos.x == 2) &&
                            (b.gridPos.y == 0 || b.gridPos.y == 2) &&
                            (b.gridPos.z == 0 || b.gridPos.z == 2);
        if (b.gridPos == Cell{1, 1, 1}) { EXPECT_EQ(neighbors.size(), 26u); }
        if (corner) { EXPECT_EQ(neighbors.size(), 7u); }
    }
}

TEST(SetupBlockForest, SphereExclusionDiscardsOutsideBlocks) {
    geometry::SphereDistance sphere({2, 2, 2}, 1.0);
    const auto cfg = denseConfig(4, 4, 4);
    const auto forest = SetupBlockForest::create(cfg, &sphere);
    EXPECT_LT(forest.numBlocks(), 64u);
    EXPECT_GT(forest.numBlocks(), 7u);
    // Every kept block intersects the sphere; every discarded one doesn't.
    const auto full = SetupBlockForest::create(cfg);
    for (const auto& b : full.blocks()) {
        const bool kept = forest.blockAt(b.gridPos.x, b.gridPos.y, b.gridPos.z).has_value();
        const geometry::CellMapping m{b.aabb, cfg.dx()};
        const bool intersects = geometry::anyFluidCell(sphere, m, 8, 8, 8);
        EXPECT_EQ(kept, intersects) << "block at " << b.gridPos;
    }
}

TEST(SetupBlockForest, FluidWorkloadMatchesVoxelCounts) {
    geometry::SphereDistance sphere({2, 2, 2}, 1.3);
    const auto cfg = denseConfig(4, 4, 4);
    auto forest = SetupBlockForest::create(cfg, &sphere);
    forest.assignFluidCellWorkload(sphere);
    std::uint64_t total = 0;
    for (const auto& b : forest.blocks()) {
        EXPECT_GT(b.workload, 0u) << "kept block with zero fluid cells";
        EXPECT_LE(b.workload, cfg.cellsPerBlock());
        if (b.fullyInside) { EXPECT_EQ(b.workload, cfg.cellsPerBlock()); }
        total += b.workload;
    }
    // Total fluid cells approximate the sphere volume.
    const real_t analytic = 4.0 / 3.0 * 3.14159265 * 1.3 * 1.3 * 1.3;
    const real_t voxelVol = real_c(total) * cfg.dx() * cfg.dx() * cfg.dx();
    EXPECT_NEAR(voxelVol, analytic, 0.05 * analytic);
}

class BalancerTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BalancerTest, MortonBalancesDenseDomain) {
    const std::uint32_t procs = GetParam();
    auto forest = SetupBlockForest::create(denseConfig(8, 8, 8));
    forest.balanceMorton(procs);
    const auto stats = forest.balanceStats();
    EXPECT_EQ(stats.emptyProcesses, 0u);
    // 512 equal blocks over `procs` processes: near-perfect split.
    EXPECT_LE(stats.imbalance, 1.02 + 1.0 * procs / 512.0);
    for (const auto& b : forest.blocks()) EXPECT_LT(b.process, procs);
}

TEST_P(BalancerTest, GraphBalancerBalancesSparseDomain) {
    const std::uint32_t procs = GetParam();
    geometry::SphereDistance sphere({4, 4, 4}, 3.0);
    auto forest = SetupBlockForest::create(denseConfig(8, 8, 8), &sphere);
    forest.assignFluidCellWorkload(sphere);
    forest.balanceGraph(procs);
    const auto stats = forest.balanceStats();
    EXPECT_LE(stats.imbalance, 1.35) << "imbalance " << stats.imbalance;
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, BalancerTest, ::testing::Values(2, 4, 16, 61));

TEST(SetupBlockForest, MortonKeepsCurveLocality) {
    auto forest = SetupBlockForest::create(denseConfig(8, 8, 8));
    forest.balanceMorton(16);
    // Blocks of each process should form few connected clumps: check that
    // the average number of same-process neighbors is high.
    std::size_t sameProcAdjacencies = 0, totalAdjacencies = 0;
    for (std::uint32_t i = 0; i < forest.numBlocks(); ++i)
        for (auto n : forest.neighborsOf(i)) {
            ++totalAdjacencies;
            if (forest.blocks()[i].process == forest.blocks()[n].process)
                ++sameProcAdjacencies;
        }
    EXPECT_GT(double(sameProcAdjacencies), 0.5 * double(totalAdjacencies));
}

TEST(SetupBlockForest, SaveLoadRoundTrip) {
    geometry::SphereDistance sphere({2, 2, 2}, 1.4);
    auto forest = SetupBlockForest::create(denseConfig(4, 4, 4), &sphere);
    forest.assignFluidCellWorkload(sphere);
    forest.balanceMorton(7);

    SendBuffer sb;
    forest.save(sb);
    RecvBuffer rb(sb.release());
    const auto loaded = SetupBlockForest::load(rb);

    ASSERT_EQ(loaded.numBlocks(), forest.numBlocks());
    EXPECT_EQ(loaded.numProcesses(), 7u);
    for (std::size_t i = 0; i < forest.numBlocks(); ++i) {
        EXPECT_EQ(loaded.blocks()[i].id, forest.blocks()[i].id);
        EXPECT_EQ(loaded.blocks()[i].gridPos, forest.blocks()[i].gridPos);
        EXPECT_EQ(loaded.blocks()[i].workload, forest.blocks()[i].workload);
        EXPECT_EQ(loaded.blocks()[i].process, forest.blocks()[i].process);
        EXPECT_EQ(loaded.blocks()[i].fullyInside, forest.blocks()[i].fullyInside);
        EXPECT_EQ(loaded.blocks()[i].aabb, forest.blocks()[i].aabb);
    }
    EXPECT_NEAR(loaded.config().dx(), forest.config().dx(), 1e-15);
}

TEST(SetupBlockForest, FileFormatIsCompact) {
    // Paper §2.2: block structures for half a million processes fit in
    // ~40 MiB; ranks below 65,536 use 2 bytes. Verify the per-block cost of
    // our format stays in single-digit bytes.
    auto forest = SetupBlockForest::create(denseConfig(16, 16, 16)); // 4096 blocks
    forest.balanceMorton(4096);
    SendBuffer sb;
    forest.save(sb);
    const double bytesPerBlock = double(sb.size()) / double(forest.numBlocks());
    EXPECT_LE(bytesPerBlock, 12.0) << "file format too fat: " << bytesPerBlock << " B/block";
}

TEST(SetupBlockForest, FileRoundTrip) {
    auto forest = SetupBlockForest::create(denseConfig(2, 2, 2));
    forest.balanceMorton(3);
    const std::string path = testing::TempDir() + "/walb_forest.bin";
    ASSERT_TRUE(forest.saveToFile(path));
    const auto loaded = SetupBlockForest::loadFromFile(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->numBlocks(), 8u);
    std::remove(path.c_str());
}

TEST(SetupBlockForest, DistributedCreationMatchesSerial) {
    geometry::SphereDistance sphere({2, 2, 2}, 1.5);
    const auto cfg = denseConfig(4, 4, 4);
    const auto serial = SetupBlockForest::create(cfg, &sphere);

    for (int ranks : {1, 3, 4}) {
        vmpi::ThreadCommWorld::launch(ranks, [&](vmpi::Comm& comm) {
            const auto parallel = SetupBlockForest::createDistributed(comm, cfg, &sphere);
            ASSERT_EQ(parallel.numBlocks(), serial.numBlocks());
            for (std::size_t i = 0; i < serial.numBlocks(); ++i) {
                EXPECT_EQ(parallel.blocks()[i].id, serial.blocks()[i].id);
                EXPECT_EQ(parallel.blocks()[i].gridPos, serial.blocks()[i].gridPos);
                EXPECT_EQ(parallel.blocks()[i].fullyInside, serial.blocks()[i].fullyInside);
            }
        });
    }
}

// ---- distributed BlockForest ------------------------------------------------

TEST(BlockForest, LocalBlocksMatchAssignment) {
    auto setup = SetupBlockForest::create(denseConfig(4, 4, 4));
    setup.balanceMorton(4);
    std::size_t totalLocal = 0;
    for (std::uint32_t rank = 0; rank < 4; ++rank) {
        BlockForest forest(setup, rank);
        for (const auto& b : forest.blocks()) {
            const auto idx = setup.blockAt(b.gridPos.x, b.gridPos.y, b.gridPos.z);
            ASSERT_TRUE(idx.has_value());
            EXPECT_EQ(setup.blocks()[*idx].process, rank);
        }
        totalLocal += forest.numLocalBlocks();
    }
    EXPECT_EQ(totalLocal, setup.numBlocks());
}

TEST(BlockForest, NeighborInfoIsConsistent) {
    auto setup = SetupBlockForest::create(denseConfig(4, 4, 4));
    setup.balanceMorton(4);
    BlockForest forest(setup, 1);
    for (const auto& b : forest.blocks())
        for (const auto& n : b.neighbors) {
            const auto idx =
                setup.blockAt(b.gridPos.x + n.dir[0], b.gridPos.y + n.dir[1],
                              b.gridPos.z + n.dir[2]);
            ASSERT_TRUE(idx.has_value());
            EXPECT_EQ(setup.blocks()[*idx].id, n.id);
            EXPECT_EQ(setup.blocks()[*idx].process, n.process);
            EXPECT_EQ(n.localIndex >= 0, n.process == 1u);
        }
}

TEST(BlockForest, PerProcessKnowledgeIsLocal) {
    // The paper's key data-structure property: a process knows its own
    // blocks and the neighborhood, nothing else. With 512 blocks on 64
    // processes, each process must know only ~8 local + O(surface) remote
    // blocks, far fewer than 512.
    auto setup = SetupBlockForest::create(denseConfig(8, 8, 8));
    setup.balanceMorton(64);
    for (std::uint32_t rank = 0; rank < 64; rank += 13) {
        BlockForest forest(setup, rank);
        EXPECT_LE(forest.numLocalBlocks(), 10u);
        EXPECT_LT(forest.numKnownRemoteBlocks(), 80u); // << 512 total
    }
}

TEST(BlockForest, BlockDataRegistry) {
    auto setup = SetupBlockForest::create(denseConfig(2, 2, 2));
    setup.balanceMorton(1);
    BlockForest forest(setup, 0);
    const auto id = forest.addBlockData<std::uint64_t>([](const BlockForest::Block& b) {
        return std::make_unique<std::uint64_t>(b.id.rootIndex() + 100);
    });
    for (std::size_t i = 0; i < forest.numLocalBlocks(); ++i)
        EXPECT_EQ(forest.getData<std::uint64_t>(i, id),
                  forest.blocks()[i].id.rootIndex() + 100);
}

TEST(BlockForest, FindBlockForGlobalCell) {
    auto setup = SetupBlockForest::create(denseConfig(2, 2, 2, 8));
    setup.balanceMorton(1);
    BlockForest forest(setup, 0);
    const auto idx = forest.findBlockForGlobalCell({9, 3, 12});
    ASSERT_GE(idx, 0);
    const auto& b = forest.blocks()[std::size_t(idx)];
    EXPECT_EQ(b.gridPos, (Cell{1, 0, 1}));
    EXPECT_EQ(forest.findBlockForGlobalCell({99, 0, 0}), -1);
}

} // namespace
} // namespace walb::bf
