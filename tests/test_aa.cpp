/// Tests for the in-place AA-pattern streaming tiers (lbm/KernelAa.h):
/// the headline property that an AA run is bit-exact with a two-grid run
/// of the same arithmetic tier on random voxelized geometries with every
/// boundary type (bounce-back, UBB, pressure anti-bounce-back), on a
/// single block and across 1-8 virtual ranks with the overlapped schedule;
/// that the single grid halves the PDF memory gauge; and that the parity
/// state machine survives the persistence layers — odd-parity checkpoint/
/// restart round trips and a live block migration mid-run — with the
/// parity-normalized state digest unchanged.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "lbm/KernelAa.h"
#include "rebalance/Migrator.h"
#include "sim/Checkpoint.h"
#include "sim/DistributedSimulation.h"
#include "sim/SingleBlockSimulation.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using lbm::TRT;
using sim::KernelTier;

// ---- shared helpers --------------------------------------------------------

/// splitmix64 of the cell coordinates: a pure function of global position,
/// as the flag-initializer contract requires (blocks re-derive their flags
/// after a migration).
std::uint64_t cellHash(std::uint64_t seed, cell_idx_t x, cell_idx_t y, cell_idx_t z) {
    std::uint64_t h = seed ^ (std::uint64_t(std::uint32_t(x)) << 42) ^
                      (std::uint64_t(std::uint32_t(y)) << 21) ^
                      std::uint64_t(std::uint32_t(z));
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

/// Random voxel cavity exercising every boundary type: UBB lid on top, a
/// pressure outlet face at y = 0, no-slip on the remaining walls plus
/// random interior obstacle voxels.
void buildCavityFlags(sim::SingleBlockSimulation& s, cell_idx_t n, std::uint64_t seed) {
    auto& flags = s.flags();
    const auto& m = s.masks();
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (z == n - 1) flags.addFlag(x, y, z, m.ubb);
        else if (y == 0) flags.addFlag(x, y, z, m.pressure);
        else if (x == 0 || x == n - 1 || y == n - 1 || z == 0)
            flags.addFlag(x, y, z, m.noSlip);
        else if (cellHash(seed, x, y, z) % 8 == 0)
            flags.addFlag(x, y, z, m.noSlip); // random obstacle voxel
    });
    s.fillRemainingWithFluid();
}

sim::SingleBlockSimulation::Config cavityConfig(KernelTier tier, cell_idx_t n,
                                                bool periodicX = false) {
    sim::SingleBlockSimulation::Config cfg;
    cfg.xSize = cfg.ySize = cfg.zSize = n;
    cfg.tier = tier;
    cfg.periodicX = periodicX;
    return cfg;
}

/// Flags, finalize and boundary values — in place, because the finalized
/// simulation holds internal references and must not be moved.
void setupCavity(sim::SingleBlockSimulation& s, cell_idx_t n, std::uint64_t seed) {
    buildCavityFlags(s, n, seed);
    s.finalize();
    s.boundary().setWallVelocity({0.04, 0, 0});
    s.boundary().setPressureDensity(real_c(1.01));
}

/// Steps both simulations in lockstep and requires bit-exact canonical
/// PDFs at every fluid cell after every step — both parities of the AA
/// state machine are probed, not just the natural-storage one.
void expectLockstepEqual(sim::SingleBlockSimulation& aa,
                         sim::SingleBlockSimulation& twoGrid, cell_idx_t n,
                         uint_t steps) {
    const TRT op = TRT::fromOmegaAndMagic(1.6);
    const auto& flags = twoGrid.flags();
    const auto fluid = twoGrid.masks().fluid;
    for (uint_t s = 0; s < steps; ++s) {
        aa.run(1, op);
        twoGrid.run(1, op);
        uint_t mismatches = 0;
        flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            if (!(flags.get(x, y, z) & fluid)) return;
            const auto a = aa.cellPdfs(x, y, z);
            const auto b = twoGrid.cellPdfs(x, y, z);
            for (uint_t q = 0; q < lbm::D3Q19::Q; ++q)
                if (a[q] != b[q]) ++mismatches;
        });
        ASSERT_EQ(mismatches, 0u) << "step " << s + 1 << " diverged (n=" << n << ")";
    }
}

// ---- single block: AA == two-grid, bit-exact -------------------------------

TEST(AaEquivalenceTest, ScalarTierMatchesTwoGridScalarBitExactly) {
    // The scalar AA kernels share d3q19::moments/collide with the two-grid
    // D3Q19 kernel, so equality must be exact to the last bit.
    for (std::uint64_t seed : {11ull, 22ull}) {
        sim::SingleBlockSimulation aa(cavityConfig(KernelTier::Aa, 12));
        sim::SingleBlockSimulation ref(cavityConfig(KernelTier::D3Q19, 12));
        setupCavity(aa, 12, seed);
        setupCavity(ref, 12, seed);
        expectLockstepEqual(aa, ref, 12, 5);
    }
}

TEST(AaEquivalenceTest, SimdTierMatchesTwoGridSimdBitExactly) {
    for (std::uint64_t seed : {33ull, 44ull}) {
        sim::SingleBlockSimulation aa(cavityConfig(KernelTier::AaSimd, 12));
        sim::SingleBlockSimulation ref(cavityConfig(KernelTier::Simd, 12));
        setupCavity(aa, 12, seed);
        setupCavity(ref, 12, seed);
        expectLockstepEqual(aa, ref, 12, 5);
    }
}

TEST(AaEquivalenceTest, PeriodicWrapMatchesTwoGridBitExactly) {
    // Periodic x exercises the AA forward/reverse local ghost wraps
    // (aaCopyPdfsLocalForward/Reverse) instead of the boundary closure.
    sim::SingleBlockSimulation aa(cavityConfig(KernelTier::AaSimd, 10, true));
    sim::SingleBlockSimulation ref(cavityConfig(KernelTier::Simd, 10, true));
    setupCavity(aa, 10, 55);
    setupCavity(ref, 10, 55);
    expectLockstepEqual(aa, ref, 10, 6);
}

TEST(AaEquivalenceTest, ConservesMassInClosedBox) {
    // Bounce-back-only closure: total mass is exactly conserved by the
    // two-grid kernels and must stay conserved through the in-place
    // even/odd pair.
    sim::SingleBlockSimulation::Config cfg;
    cfg.xSize = cfg.ySize = cfg.zSize = 10;
    cfg.tier = KernelTier::AaSimd;
    sim::SingleBlockSimulation s(cfg);
    auto& flags = s.flags();
    const auto& m = s.masks();
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (x == 0 || x == 9 || y == 0 || y == 9 || z == 0 || z == 9)
            flags.addFlag(x, y, z, m.noSlip);
        else if (cellHash(7, x, y, z) % 8 == 0)
            flags.addFlag(x, y, z, m.noSlip);
    });
    s.fillRemainingWithFluid();
    s.finalize(1.0, {0.02, 0.01, -0.015});
    const real_t before = s.totalMass();
    s.run(9, TRT::fromOmegaAndMagic(1.6)); // odd count: ends at parity Odd
    EXPECT_NEAR(s.totalMass() / before, 1.0, 1e-12);
}

TEST(AaEquivalenceTest, HalvesPdfMemoryGauge) {
    sim::SingleBlockSimulation aa(cavityConfig(KernelTier::AaSimd, 16));
    sim::SingleBlockSimulation ref(cavityConfig(KernelTier::Simd, 16));
    setupCavity(aa, 16, 66);
    setupCavity(ref, 16, 66);
    const TRT op = TRT::fromOmegaAndMagic(1.6);
    aa.run(2, op);
    ref.run(2, op);
    const double aaBytes = aa.metrics().gauge("mem.pdf_bytes").value();
    const double refBytes = ref.metrics().gauge("mem.pdf_bytes").value();
    EXPECT_GT(aaBytes, 0.0);
    // One full grid plus the token 1^3 shadow allocation vs two full grids.
    EXPECT_LT(aaBytes, 0.55 * refBytes);
}

// ---- distributed: AA == two-grid across ranks ------------------------------

/// Random voxelized geometry (pure function of global position): UBB lid
/// on top, a pressure face at y = 0, no-slip walls and random obstacles.
sim::DistributedSimulation::FlagInitializer voxelFlags(cell_idx_t NX, cell_idx_t NY,
                                                       cell_idx_t NZ,
                                                       std::uint64_t seed) {
    return [=](field::FlagField& flags, const lbm::BoundaryFlags& masks,
               const bf::BlockForest::Block&, const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > real_c(NX) ||
                p[1] > real_c(NY) || p[2] > real_c(NZ))
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.z == NZ - 1) flags.addFlag(x, y, z, masks.ubb);
            else if (g.y == 0) flags.addFlag(x, y, z, masks.pressure);
            else if (g.x == 0 || g.x == NX - 1 || g.y == NY - 1 || g.z == 0)
                flags.addFlag(x, y, z, masks.noSlip);
            else if (cellHash(seed, g.x, g.y, g.z) % 8 == 0)
                flags.addFlag(x, y, z, masks.noSlip);
            else
                flags.addFlag(x, y, z, masks.fluid);
        });
    };
}

bf::SetupBlockForest makeSetup(std::uint32_t blocksX, std::uint32_t ranks) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8.0 * blocksX, 8, 8);
    cfg.rootBlocksX = blocksX;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    return setup;
}

using CellKey = std::tuple<cell_idx_t, cell_idx_t, cell_idx_t>;
using StateMap = std::map<CellKey, std::array<real_t, lbm::D3Q19::Q>>;

/// Runs `steps` on `ranks` virtual ranks with the given tier and collects
/// the canonical PDFs of every global fluid cell (bit-exact, fluid cells
/// are the complete physical state all tiers agree on by contract).
StateMap runCanonicalState(std::uint32_t blocksX, std::uint32_t ranks, uint_t steps,
                           std::uint64_t seed, KernelTier tier, bool overlap) {
    auto setup = makeSetup(blocksX, ranks);
    const auto flagInit = voxelFlags(8 * cell_idx_c(blocksX), 8, 8, seed);
    StateMap state;
    std::mutex mu;
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit, tier);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setPressureDensity(real_c(1.01));
        simulation.setOverlapCommunication(overlap);
        simulation.run(steps, TRT::fromOmegaAndMagic(1.6));
        const auto& forest = simulation.forest();
        const auto fluid = simulation.masks().fluid;
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t b = 0; b < forest.blocks().size(); ++b) {
            const Cell off = forest.globalCellOffset(forest.blocks()[b]);
            const auto& flags = simulation.flagField(b);
            flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
                if (!(flags.get(x, y, z) & fluid)) return;
                state[{off.x + x, off.y + y, off.z + z}] =
                    simulation.cellCanonicalPdfs(b, x, y, z);
            });
        }
    });
    return state;
}

void expectStatesEqual(const StateMap& a, const StateMap& b) {
    ASSERT_EQ(a.size(), b.size());
    std::size_t mismatches = 0;
    for (const auto& [cell, pdfs] : a) {
        const auto it = b.find(cell);
        if (it == b.end() || pdfs != it->second) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u);
}

TEST(AaDistributedTest, MatchesTwoGridOnRandomGeometriesAcrossRanks) {
    // 1 rank (no remote neighbors), partial and full distribution; a
    // different random geometry each. Odd step count so the comparison
    // lands on the parity-Even storage (the hard canonicalization case).
    const struct {
        std::uint32_t blocksX, ranks;
        std::uint64_t seed;
    } cases[] = {{2, 1, 101}, {4, 2, 202}, {4, 4, 303}, {8, 8, 404}};
    for (const auto& c : cases) {
        const auto ref =
            runCanonicalState(c.blocksX, c.ranks, 5, c.seed, KernelTier::Simd, false);
        const auto aa =
            runCanonicalState(c.blocksX, c.ranks, 5, c.seed, KernelTier::AaSimd, false);
        SCOPED_TRACE("blocksX=" + std::to_string(c.blocksX) +
                     " ranks=" + std::to_string(c.ranks));
        ASSERT_FALSE(ref.empty());
        expectStatesEqual(aa, ref);
    }
}

TEST(AaDistributedTest, OverlapScheduleMatchesTwoGridAndSynchronous) {
    const auto refSync =
        runCanonicalState(4, 4, 6, 909, KernelTier::Simd, false);
    const auto aaSync =
        runCanonicalState(4, 4, 6, 909, KernelTier::AaSimd, false);
    const auto aaOverlap =
        runCanonicalState(4, 4, 6, 909, KernelTier::AaSimd, true);
    {
        SCOPED_TRACE("aa sync vs two-grid sync");
        expectStatesEqual(aaSync, refSync);
    }
    {
        SCOPED_TRACE("aa overlap vs two-grid sync");
        expectStatesEqual(aaOverlap, refSync);
    }
}

TEST(AaDistributedTest, SurvivesLiveMigrationMidRun) {
    const std::uint32_t ranks = 4;
    const std::uint64_t seed = 777;
    // Reference: uninterrupted AA run. Migration after an odd number of
    // steps moves parity-Even storage — the case where a raw interior copy
    // would lose the odd kernel's ghost-layer pushes.
    const auto want =
        runCanonicalState(ranks, ranks, 7, seed, KernelTier::AaSimd, false);
    const auto twoGrid =
        runCanonicalState(ranks, ranks, 7, seed, KernelTier::Simd, false);

    auto setup = makeSetup(ranks, ranks);
    const auto flagInit = voxelFlags(8 * cell_idx_c(ranks), 8, 8, seed);
    StateMap got;
    std::mutex mu;
    std::atomic<std::uint64_t> digest{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit,
                                              KernelTier::AaSimd);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setPressureDensity(real_c(1.01));
        const TRT op = TRT::fromOmegaAndMagic(1.6);
        simulation.run(3, op);

        const std::uint64_t before = simulation.stateDigest();
        std::vector<std::uint32_t> rotated;
        for (const auto& b : simulation.setup().blocks())
            rotated.push_back((b.process + 1) % ranks);
        const auto stats = rebalance::migrate(simulation, rotated);
        EXPECT_EQ(stats.blocksMoved, std::size_t(ranks));
        // The parity-normalized digest must not move across the migration.
        EXPECT_EQ(simulation.stateDigest(), before);

        simulation.run(4, op);
        const std::uint64_t after = simulation.stateDigest(); // collective
        if (comm.rank() == 0) digest = after;
        const auto& forest = simulation.forest();
        const auto fluid = simulation.masks().fluid;
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t b = 0; b < forest.blocks().size(); ++b) {
            const Cell off = forest.globalCellOffset(forest.blocks()[b]);
            const auto& flags = simulation.flagField(b);
            flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
                if (!(flags.get(x, y, z) & fluid)) return;
                got[{off.x + x, off.y + y, off.z + z}] =
                    simulation.cellCanonicalPdfs(b, x, y, z);
            });
        }
    });
    expectStatesEqual(got, want);
    expectStatesEqual(got, twoGrid);
    EXPECT_NE(digest.load(), 0u);
}

// ---- persistence: parity-normalized checkpoints ----------------------------

TEST(AaPersistenceTest, OddParityCheckpointRestartRoundTrip) {
    const std::uint32_t ranks = 4;
    const std::uint64_t seed = 1234;
    const std::string path = testing::TempDir() + "/walb_aa_roundtrip.wckp";
    auto setup = makeSetup(ranks, ranks);
    const auto flagInit = voxelFlags(8 * cell_idx_c(ranks), 8, 8, seed);
    const TRT op = TRT::fromOmegaAndMagic(1.6);

    // Reference: 8 uninterrupted AA steps.
    const auto want =
        runCanonicalState(ranks, ranks, 8, seed, KernelTier::AaSimd, false);

    std::atomic<std::uint64_t> digestAtSave{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit,
                                              KernelTier::AaSimd);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setPressureDensity(real_c(1.01));
        // An odd step count: the checkpoint is written from parity-Odd
        // storage, so the canonical save must undo the swapped-local slot
        // layout rather than copying the field verbatim.
        simulation.run(3, op);
        ASSERT_EQ(simulation.aaParity(), lbm::AaParity::Odd);
        ASSERT_TRUE(simulation.saveCheckpoint(path));
        const std::uint64_t saved = simulation.stateDigest(); // collective
        if (comm.rank() == 0) digestAtSave = saved;
    });

    StateMap got;
    std::mutex mu;
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit,
                                              KernelTier::AaSimd);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setPressureDensity(real_c(1.01));
        std::string err;
        ASSERT_TRUE(simulation.loadCheckpoint(path, &err)) << err;
        // The restored state must digest-match the saver at parity Odd...
        EXPECT_EQ(simulation.currentStep(), 3u);
        EXPECT_EQ(simulation.aaParity(), lbm::AaParity::Odd);
        EXPECT_EQ(simulation.stateDigest(), digestAtSave.load());
        simulation.run(5, op);
        const auto& forest = simulation.forest();
        const auto fluid = simulation.masks().fluid;
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t b = 0; b < forest.blocks().size(); ++b) {
            const Cell off = forest.globalCellOffset(forest.blocks()[b]);
            const auto& flags = simulation.flagField(b);
            flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
                if (!(flags.get(x, y, z) & fluid)) return;
                got[{off.x + x, off.y + y, off.z + z}] =
                    simulation.cellCanonicalPdfs(b, x, y, z);
            });
        }
    });
    expectStatesEqual(got, want);
}

TEST(AaPersistenceTest, DigestIsInvariantUnderStorageParity) {
    // The same physical trajectory digested at consecutive steps must show
    // the digest changing with the state, not with the parity: digests at
    // step k of two independent same-seed runs agree at every k, whether k
    // leaves the storage at parity Even or Odd.
    const std::uint32_t ranks = 2;
    auto digestsOf = [&](uint_t steps) {
        auto setup = makeSetup(4, ranks);
        const auto flagInit = voxelFlags(32, 8, 8, 555);
        std::atomic<std::uint64_t> d{0};
        vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
            sim::DistributedSimulation simulation(comm, setup, flagInit,
                                                  KernelTier::AaSimd);
            simulation.setWallVelocity({0.04, 0, 0});
            simulation.setPressureDensity(real_c(1.01));
            simulation.run(steps, TRT::fromOmegaAndMagic(1.6));
            const std::uint64_t dig = simulation.stateDigest(); // collective
            if (comm.rank() == 0) d = dig;
        });
        return d.load();
    };
    const std::uint64_t evenA = digestsOf(4), evenB = digestsOf(4);
    const std::uint64_t oddA = digestsOf(5), oddB = digestsOf(5);
    EXPECT_EQ(evenA, evenB);
    EXPECT_EQ(oddA, oddB);
    EXPECT_NE(evenA, oddA) << "digest must track the state across a step";
}

} // namespace
} // namespace walb
