/// Tests for the mixed-level octree forest (the data-structure refinement
/// capability of paper §2.2): adaptive refinement, leaf tiling, cross-level
/// neighbor lookup, and 2:1 grading.

#include <gtest/gtest.h>

#include "blockforest/OctreeForest.h"
#include "geometry/SignedDistance.h"

namespace walb::bf {
namespace {

TEST(OctreeForest, NoRefinementGivesRootGrid) {
    const auto forest = OctreeForest::create(
        AABB(0, 0, 0, 4, 2, 2), 4, 2, 2, [](const AABB&, unsigned) { return false; }, 5);
    EXPECT_EQ(forest.numLeaves(), 16u);
    EXPECT_EQ(forest.maxLevelPresent(), 0u);
    EXPECT_NEAR(forest.totalLeafVolume(), 16.0, 1e-12);
}

TEST(OctreeForest, UniformRefinementMultipliesLeavesByEight) {
    const auto forest = OctreeForest::create(
        AABB(0, 0, 0, 2, 2, 2), 1, 1, 1,
        [](const AABB&, unsigned level) { return level < 2; }, 5);
    EXPECT_EQ(forest.numLeaves(), 64u);
    EXPECT_EQ(forest.maxLevelPresent(), 2u);
    EXPECT_NEAR(forest.totalLeafVolume(), 8.0, 1e-12);
    // Leaf ids are all distinct.
    std::set<BlockID> ids;
    for (auto li : forest.leaves()) ids.insert(forest.node(li).id);
    EXPECT_EQ(ids.size(), 64u);
}

TEST(OctreeForest, AdaptiveRefinementAroundSurface) {
    // Refine blocks near a sphere surface: fine leaves cluster there, the
    // rest stays coarse, and the leaves still tile the domain exactly.
    geometry::SphereDistance sphere({1, 1, 1}, 0.6);
    const auto forest = OctreeForest::create(
        AABB(0, 0, 0, 2, 2, 2), 2, 2, 2,
        [&](const AABB& box, unsigned level) {
            return level < 3 &&
                   std::abs(sphere.signedDistance(box.center())) <
                       box.circumsphereRadius();
        },
        5);
    EXPECT_GT(forest.maxLevelPresent(), 1u);
    EXPECT_NEAR(forest.totalLeafVolume(), 8.0, 1e-12);
    // Fine leaves are near the surface; coarse leaves are not.
    for (auto li : forest.leaves()) {
        const auto& node = forest.node(li);
        if (node.level == forest.maxLevelPresent()) {
            EXPECT_LT(std::abs(sphere.signedDistance(node.aabb.center())),
                      4 * node.aabb.circumsphereRadius());
        }
    }
}

TEST(OctreeForest, LeafAtFindsTheContainingLeaf) {
    const auto forest = OctreeForest::create(
        AABB(0, 0, 0, 2, 2, 2), 1, 1, 1,
        [](const AABB& box, unsigned level) {
            return level < 2 && box.min()[0] < 0.5; // refine only the low-x part
        },
        5);
    const auto fine = forest.leafAt({0.1, 0.1, 0.1});
    const auto coarse = forest.leafAt({1.9, 1.9, 1.9});
    ASSERT_GE(fine, 0);
    ASSERT_GE(coarse, 0);
    EXPECT_GT(forest.node(std::uint32_t(fine)).level,
              forest.node(std::uint32_t(coarse)).level);
    EXPECT_TRUE(forest.node(std::uint32_t(fine)).aabb.contains({0.1, 0.1, 0.1}));
    EXPECT_EQ(forest.leafAt({5, 5, 5}), -1);
}

TEST(OctreeForest, NeighborsAcrossLevels) {
    // One refined root next to an unrefined one: the coarse leaf must list
    // the four fine face neighbors, and vice versa.
    const auto forest = OctreeForest::create(
        AABB(0, 0, 0, 2, 1, 1), 2, 1, 1,
        [](const AABB& box, unsigned level) { return level < 1 && box.min()[0] < 0.5; }, 3);
    ASSERT_EQ(forest.numLeaves(), 9u); // 8 fine + 1 coarse

    const auto coarse = forest.leafAt({1.5, 0.5, 0.5});
    ASSERT_GE(coarse, 0);
    const auto neighbors = forest.neighborLeaves(std::uint32_t(coarse));
    // The four fine children on the shared face x = 1 touch the coarse
    // leaf; the four at x < 0.5 do not.
    EXPECT_EQ(neighbors.size(), 4u);
    for (auto n : neighbors) {
        EXPECT_EQ(forest.node(n).level, 1u);
        EXPECT_NEAR(forest.node(n).aabb.max()[0], 1.0, 1e-12);
    }

    const auto fine = forest.leafAt({0.9, 0.2, 0.2});
    ASSERT_GE(fine, 0);
    const auto fineNeighbors = forest.neighborLeaves(std::uint32_t(fine));
    // The fine leaf sees the coarse leaf plus its fine siblings.
    bool seesCoarse = false;
    for (auto n : fineNeighbors)
        if (std::int32_t(n) == coarse) seesCoarse = true;
    EXPECT_TRUE(seesCoarse);
}

TEST(OctreeForest, TwoToOneBalanceDetectionAndRepair) {
    // Nested corner refinement is intrinsically graded, so to violate the
    // 2:1 rule we refine deep toward the face between root 0 and the
    // unrefined root 1: the level-3 leaves at x -> 1 then face the level-0
    // root directly.
    auto forest = OctreeForest::create(
        AABB(0, 0, 0, 2, 1, 1), 2, 1, 1,
        [](const AABB& box, unsigned level) {
            return level < 3 && box.containsClosed({0.99, 0.01, 0.01});
        },
        5);
    EXPECT_EQ(forest.maxLevelPresent(), 3u);
    EXPECT_FALSE(forest.is2to1Balanced());
    const real_t volumeBefore = forest.totalLeafVolume();

    const std::size_t splits = forest.enforce2to1Balance();
    EXPECT_GT(splits, 0u);
    EXPECT_TRUE(forest.is2to1Balanced());
    EXPECT_NEAR(forest.totalLeafVolume(), volumeBefore, 1e-12);
}

TEST(OctreeForest, FacesTouchClassification) {
    const AABB a(0, 0, 0, 1, 1, 1);
    EXPECT_TRUE(OctreeForest::facesTouch(a, AABB(1, 0, 0, 2, 1, 1)));    // face
    EXPECT_TRUE(OctreeForest::facesTouch(a, AABB(1, 0.5, 0, 2, 1.5, 1))); // partial face
    EXPECT_FALSE(OctreeForest::facesTouch(a, AABB(1, 1, 0, 2, 2, 1)));   // edge
    EXPECT_FALSE(OctreeForest::facesTouch(a, AABB(1, 1, 1, 2, 2, 2)));   // corner
    EXPECT_FALSE(OctreeForest::facesTouch(a, AABB(3, 0, 0, 4, 1, 1)));   // apart
}

} // namespace
} // namespace walb::bf
