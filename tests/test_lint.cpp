/// \file test_lint.cpp
/// walb_lint rule engine against the committed fixtures in
/// tests/lint_fixtures/: each rule has a bad fixture (exact violation
/// lines asserted — the falsifiability check: a rule that silently stops
/// firing fails here) and a good fixture (no false positives). The real
/// registries are also loaded and must be self-consistent.

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/Lint.h"

namespace {

using walb::lint::Linter;
using walb::lint::Violation;

std::string readTree(const std::string& rel) {
    const std::string path = std::string(WALB_SOURCE_DIR) + "/" + rel;
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << "missing fixture: " << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

std::string fixture(const std::string& name) {
    return readTree("tests/lint_fixtures/" + name);
}

/// Sorted violation lines of one rule (a violation of any *other* rule in
/// the fixture is ignored — fixtures are not compilable C++ and may trip
/// rules they don't target).
std::vector<int> linesOf(const std::vector<Violation>& vs, const std::string& rule) {
    std::vector<int> out;
    for (const auto& v : vs)
        if (v.rule == rule) out.push_back(v.line);
    std::sort(out.begin(), out.end());
    return out;
}

/// A Linter primed with the real project registries; the fixture checks
/// run against exactly what the build gate uses.
Linter realLinter() {
    Linter lint;
    std::vector<Violation> vs;
    lint.loadTagRegistry("src/vmpi/Tags.h", readTree("src/vmpi/Tags.h"), vs);
    lint.loadMetricNames("src/obs/MetricNames.h", readTree("src/obs/MetricNames.h"), vs);
    EXPECT_TRUE(vs.empty()) << "real registries must load clean, got: "
                            << (vs.empty() ? "" : vs.front().message);
    return lint;
}

TEST(Lint, RealRegistriesAreSelfConsistent) {
    Linter lint = realLinter();
    EXPECT_TRUE(lint.hasTagRegistry());
    EXPECT_TRUE(lint.hasMetricNames());
    EXPECT_EQ(lint.tagBands().size(), 5u)
        << "user/reliable/agreement/shrunk/serve";
    EXPECT_GE(lint.tagConstants().size(), 13u);
    EXPECT_TRUE(lint.metricNames().count("sim.steps"));
    EXPECT_TRUE(lint.metricNames().count("sim.step_seconds"));
}

TEST(Lint, BlockingBadFlagsEveryUnguardedCall) {
    auto vs = realLinter().checkFile("f.cpp", fixture("blocking_bad.cpp"));
    EXPECT_EQ(linesOf(vs, "blocking-guard"), (std::vector<int>{7, 8, 9, 10, 18}));
}

TEST(Lint, BlockingGoodIsClean) {
    auto vs = realLinter().checkFile("f.cpp", fixture("blocking_good.cpp"));
    EXPECT_TRUE(vs.empty()) << vs.front().message << " at line " << vs.front().line;
}

TEST(Lint, TagsBadFlagsLiteralsAndStrayConstants) {
    auto vs = realLinter().checkFile("f.cpp", fixture("tags_bad.cpp"));
    EXPECT_EQ(linesOf(vs, "tag-registry"), (std::vector<int>{5, 8, 9, 11}));
}

TEST(Lint, TagsGoodIsClean) {
    auto vs = realLinter().checkFile("f.cpp", fixture("tags_good.cpp"));
    EXPECT_TRUE(linesOf(vs, "tag-registry").empty());
}

TEST(Lint, MetricsBadFlagsUndeclaredNames) {
    auto vs = realLinter().checkFile("f.cpp", fixture("metrics_bad.cpp"));
    EXPECT_EQ(linesOf(vs, "metric-name"), (std::vector<int>{5, 6, 7}));
}

TEST(Lint, MetricsAaBadFlagsUnregisteredFootprintNames) {
    // The AA tier's registered "mem.pdf_bytes" gauge passes; the near-miss
    // typo and an unregistered parity counter must each fire.
    auto vs = realLinter().checkFile("f.cpp", fixture("metrics_aa_bad.cpp"));
    EXPECT_EQ(linesOf(vs, "metric-name"), (std::vector<int>{6, 7}));
}

TEST(Lint, DeterminismBadFlagsRandomClockAndFloat) {
    auto vs = realLinter().checkFile("f.cpp", fixture("determinism_bad.cpp"));
    EXPECT_EQ(linesOf(vs, "determinism"), (std::vector<int>{7, 8, 9}));
}

TEST(Lint, LockBadFlagsCommLoggingAndBareWait) {
    auto vs = realLinter().checkFile("f.cpp", fixture("lock_bad.cpp"));
    EXPECT_EQ(linesOf(vs, "lock-scope"), (std::vector<int>{8, 9, 10, 14}));
}

TEST(Lint, LockGoodIsClean) {
    auto vs = realLinter().checkFile("f.cpp", fixture("lock_good.cpp"));
    EXPECT_TRUE(vs.empty()) << vs.front().message << " at line " << vs.front().line;
}

TEST(Lint, BadRegistryYieldsAllConsistencyViolations) {
    Linter lint;
    std::vector<Violation> vs;
    lint.loadTagRegistry("r.h", fixture("tags_registry_bad.h"), vs);
    // Out-of-band tag (13), duplicate value (12), static band overlap (15),
    // and three epoch-shift collisions: a+1 into b (9), c+1 into a (18),
    // c+2 into b (18).
    EXPECT_EQ(linesOf(vs, "tag-registry"), (std::vector<int>{9, 12, 13, 15, 18, 18}));
}

TEST(Lint, GoodRegistryLoadsClean) {
    Linter lint;
    std::vector<Violation> vs;
    lint.loadTagRegistry("r.h", fixture("tags_registry_good.h"), vs);
    EXPECT_TRUE(vs.empty()) << vs.front().message;
    EXPECT_EQ(lint.tagBands().size(), 2u);
}

TEST(Lint, DuplicateMetricDeclarationIsFlagged) {
    Linter lint;
    std::vector<Violation> vs;
    lint.loadMetricNames("m.h", fixture("metric_names.h"), vs);
    EXPECT_EQ(linesOf(vs, "metric-name"), (std::vector<int>{9}));
    EXPECT_TRUE(lint.metricNames().count("sim.steps"));
    EXPECT_TRUE(lint.metricNames().count("dup.name"));
}

/// The build-gate property the whole PR rests on: the shipping tree itself
/// is violation-free under the shipping registries. (The walb_lint_check
/// ctest runs the CLI over src/bench/tools; this is the in-process spot
/// check that the library agrees on two load-bearing files.)
TEST(Lint, ShippingCommPathsAreClean) {
    Linter lint = realLinter();
    for (const char* rel : {"src/vmpi/ReliableComm.h", "src/sim/Checkpoint.cpp",
                            "src/rebalance/Migrator.cpp", "src/vmpi/ThreadComm.cpp"}) {
        auto vs = lint.checkFile(rel, readTree(rel));
        EXPECT_TRUE(vs.empty()) << rel << ": " << vs.front().rule << " at line "
                                << vs.front().line;
    }
}

} // namespace
