/// Integration tests of the full distributed stack: block forest + virtual
/// MPI + ghost-layer PDF exchange + boundary handling + kernels. The
/// gold standard: a multi-block, multi-rank run must reproduce the
/// single-block reference solution of the same global problem.

#include <gtest/gtest.h>

#include "sim/DistributedSimulation.h"
#include "sim/SingleBlockSimulation.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb::sim {
namespace {

using lbm::TRT;

constexpr cell_idx_t N = 16; // global domain: N^3 cells

/// Global flag assignment of the reference problem: lid-driven cavity with
/// a moving lid at y = N-1 and no-slip walls elsewhere.
void cavityFlags(field::FlagField& flags, const lbm::BoundaryFlags& masks, const Cell& offset) {
    flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Cell g{offset.x + x, offset.y + y, offset.z + z};
        if (g.x < 0 || g.y < 0 || g.z < 0 || g.x >= N || g.y >= N || g.z >= N) return;
        if (g.y == N - 1) flags.addFlag(x, y, z, masks.ubb);
        else if (g.x == 0 || g.x == N - 1 || g.y == 0 || g.z == 0 || g.z == N - 1)
            flags.addFlag(x, y, z, masks.noSlip);
        else flags.addFlag(x, y, z, masks.fluid);
    });
}

/// Reference single-block solution.
std::vector<Vec3> referenceCavity(uint_t steps, const std::vector<Cell>& probes) {
    SingleBlockSimulation::Config cfg;
    cfg.xSize = N;
    cfg.ySize = N;
    cfg.zSize = N;
    SingleBlockSimulation sim(cfg);
    cavityFlags(sim.flags(), sim.masks(), {0, 0, 0});
    sim.finalize();
    sim.boundary().setWallVelocity({0.04, 0, 0});
    sim.run(steps, TRT::fromOmegaAndMagic(1.3));
    std::vector<Vec3> result;
    for (const Cell& p : probes) result.push_back(sim.velocity(p.x, p.y, p.z));
    return result;
}

bf::SetupBlockForest cavitySetup(std::uint32_t blocksPerAxis, std::uint32_t ranks,
                                 bool graphBalance = false) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, real_c(N), real_c(N), real_c(N));
    cfg.rootBlocksX = cfg.rootBlocksY = cfg.rootBlocksZ = blocksPerAxis;
    const auto cells = std::uint32_t(uint_c(N) / blocksPerAxis);
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = cells;
    auto setup = bf::SetupBlockForest::create(cfg);
    if (graphBalance) setup.balanceGraph(ranks);
    else setup.balanceMorton(ranks);
    return setup;
}

DistributedSimulation::FlagInitializer distributedCavityFlags() {
    return [](field::FlagField& flags, const lbm::BoundaryFlags& masks,
              const bf::BlockForest::Block& block, const geometry::CellMapping& mapping) {
        const auto cells = cell_idx_c(std::llround(mapping.blockBox.xSize() / mapping.dx));
        const Cell offset{block.gridPos.x * cells, block.gridPos.y * cells,
                          block.gridPos.z * cells};
        cavityFlags(flags, masks, offset);
    };
}

struct DistCase {
    std::uint32_t blocksPerAxis;
    int ranks;
    bool graphBalance;
    KernelTier tier;
};

class DistributedEquivalence : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedEquivalence, MatchesSingleBlockReference) {
    const auto param = GetParam();
    const uint_t steps = 40;
    const std::vector<Cell> probes = {
        {N / 2, N / 2, N / 2}, {1, N - 2, 1}, {N - 2, 1, N - 2}, {3, 7, 11}, {7, 7, 8}};
    const std::vector<Vec3> reference = referenceCavity(steps, probes);

    const auto setup = cavitySetup(param.blocksPerAxis, std::uint32_t(param.ranks),
                                   param.graphBalance);
    vmpi::ThreadCommWorld::launch(param.ranks, [&](vmpi::Comm& comm) {
        DistributedSimulation sim(comm, setup, distributedCavityFlags(), param.tier);
        sim.setWallVelocity({0.04, 0, 0});
        sim.run(steps, TRT::fromOmegaAndMagic(1.3));
        for (std::size_t p = 0; p < probes.size(); ++p) {
            const Vec3 u = sim.gatherCellVelocity(probes[p]);
            EXPECT_NEAR(u[0], reference[p][0], 1e-13) << "probe " << probes[p];
            EXPECT_NEAR(u[1], reference[p][1], 1e-13) << "probe " << probes[p];
            EXPECT_NEAR(u[2], reference[p][2], 1e-13) << "probe " << probes[p];
        }
    });
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, DistributedEquivalence,
    ::testing::Values(DistCase{2, 1, false, KernelTier::Simd},   // multi-block, one rank
                      DistCase{2, 4, false, KernelTier::Simd},   // 8 blocks on 4 ranks
                      DistCase{2, 8, false, KernelTier::Simd},   // one block per rank
                      DistCase{4, 4, false, KernelTier::Simd},   // 64 blocks on 4 ranks
                      DistCase{2, 4, true, KernelTier::Simd},    // graph-balanced
                      DistCase{2, 4, false, KernelTier::Generic},
                      DistCase{2, 4, false, KernelTier::D3Q19}),
    [](const auto& tinfo) {
        const auto& p = tinfo.param;
        std::string name = std::to_string(p.blocksPerAxis) + "x_ranks" +
                           std::to_string(p.ranks) + (p.graphBalance ? "_graph" : "_morton");
        name += p.tier == KernelTier::Simd ? "_simd"
              : p.tier == KernelTier::Generic ? "_generic" : "_celllist";
        return name;
    });

TEST(Distributed, MassConservedAcrossRanks) {
    const auto setup = cavitySetup(2, 4);
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        DistributedSimulation sim(comm, setup, distributedCavityFlags());
        sim.setWallVelocity({0.04, 0, 0});
        const real_t m0 = sim.gatherTotalMass();
        sim.run(100, TRT::fromOmegaAndMagic(1.3));
        EXPECT_NEAR(sim.gatherTotalMass(), m0, 1e-9 * m0);
    });
}

TEST(Distributed, UniformEquilibriumIsExactFixedPoint) {
    // An all-periodic-free enclosed box at rest must stay exactly at rest:
    // any packing/unpacking asymmetry would disturb it.
    const auto setup = cavitySetup(2, 8);
    vmpi::ThreadCommWorld::launch(8, [&](vmpi::Comm& comm) {
        DistributedSimulation sim(comm, setup, distributedCavityFlags());
        sim.setWallVelocity({0, 0, 0}); // lid at rest: closed box
        sim.run(20, TRT::fromOmegaAndMagic(1.0));
        const Vec3 u = sim.gatherCellVelocity({N / 2, N / 2, N / 2});
        // Zero up to non-associative summation residue of the lattice
        // weights (~1e-18); any packing asymmetry would be orders larger.
        EXPECT_NEAR(u[0], 0.0, 1e-15);
        EXPECT_NEAR(u[1], 0.0, 1e-15);
        EXPECT_NEAR(u[2], 0.0, 1e-15);
    });
}

TEST(Distributed, FluidCellCountsMatchReference) {
    const auto setup = cavitySetup(2, 4);
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        DistributedSimulation sim(comm, setup, distributedCavityFlags());
        // Interior fluid cells of the cavity: (N-2)^3 minus nothing else.
        EXPECT_EQ(sim.globalFluidCells(), uint_c((N - 2) * (N - 2) * (N - 2)));
    });
}

TEST(Distributed, CommunicationVolumeIsDirectionSliced) {
    // With 2x2x2 blocks of 8^3 cells on 2 ranks (Morton: 4 blocks each),
    // the direction-sliced exchange ships 5 PDFs per face cell and 1 per
    // edge cell -- far less than the full 19 PDFs per ghost cell.
    const auto setup = cavitySetup(2, 2);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        DistributedSimulation sim(comm, setup, distributedCavityFlags());
        sim.run(1, TRT::fromOmegaAndMagic(1.3));
        const std::size_t bytes = sim.bytesLastExchange();
        ASSERT_GT(bytes, 0u);
        // Upper bound if all 19 PDFs of every interface cell were sent:
        // 4 faces of 64 cells (+ edges) per rank pair ~ conservative bound.
        const std::size_t fullBytes = 4u * 64u * 19u * sizeof(real_t) * 2;
        EXPECT_LT(bytes, fullBytes / 2) << "exchange not direction-sliced?";
    });
}

TEST(Distributed, TimingPoolSeparatesPhases) {
    const auto setup = cavitySetup(2, 2);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        DistributedSimulation sim(comm, setup, distributedCavityFlags());
        sim.run(5, TRT::fromOmegaAndMagic(1.3));
        EXPECT_EQ(sim.timing()["communication"].count(), 5u);
        EXPECT_EQ(sim.timing()["collideStream"].count(), 5u);
        EXPECT_GT(sim.timing().grandTotal(), 0.0);
        EXPECT_GT(sim.timing().fraction("collideStream"), 0.0);
    });
}

TEST(Distributed, SerialCommBackendWorksToo) {
    const auto setup = cavitySetup(2, 1);
    vmpi::SerialComm comm;
    DistributedSimulation sim(comm, setup, distributedCavityFlags());
    sim.setWallVelocity({0.04, 0, 0});
    sim.run(10, TRT::fromOmegaAndMagic(1.3));
    const Vec3 u = sim.gatherCellVelocity({N / 2, N - 2, N / 2});
    EXPECT_NE(u[0], 0.0); // lid layer is moving
}

} // namespace
} // namespace walb::sim
