/// Tests of the performance models against the paper's published numbers:
/// roofline bounds (87.8 / 76.2 MLUPS), ECM composition (448 + 114 cycles),
/// frequency scaling (93% performance at 1.6 GHz), SMT behavior, network
/// model shapes, and the local STREAM / kernel measurement plumbing.

#include <gtest/gtest.h>

#include "perf/Ecm.h"
#include "perf/LocalBench.h"
#include "perf/Scaling.h"
#include "perf/Stream.h"

namespace walb::perf {
namespace {

TEST(Roofline, MatchesPaperBounds) {
    // Paper §4.1: 37.3 GiB/s / 456 B = 87.8 MLUPS on a SuperMUC socket,
    // 32.4 GiB/s -> 76.2 MLUPS on a JUQUEEN node.
    EXPECT_NEAR(rooflineMLUPS(superMUCSocket().usableBandwidthGiBs), 87.8, 0.1);
    EXPECT_NEAR(rooflineMLUPS(juqueenNode().usableBandwidthGiBs), 76.2, 0.2);
    EXPECT_DOUBLE_EQ(kBytesPerLUP, 456.0);
}

TEST(Ecm, PaperCycleInputs) {
    const EcmModel ecm(superMUCSocket());
    EXPECT_DOUBLE_EQ(ecm.coreCyclesPer8LUP(), 448.0); // IACA, paper §4.1
    EXPECT_DOUBLE_EQ(ecm.cacheCyclesPer8LUP(), 114.0);
    // Single-core T_mem at 2.7 GHz: 8 * 456 B over the ~11.2 GiB/s one SNB
    // core can draw.
    EXPECT_NEAR(ecm.memCyclesPer8LUP(),
                8.0 * 456.0 / (superMUCSocket().singleCoreBandwidthGiBs * kGiB) * 2.7e9,
                1e-9);
    // Chip saturation still follows the usable 37.3 GiB/s roofline.
    EXPECT_NEAR(ecm.saturationMLUPS(), 87.8, 0.1);
}

TEST(Ecm, SocketSaturatesBelowFullCoreCount) {
    // Paper §4.1: "the memory interface can be saturated using only six of
    // the eight cores" at 2.7 GHz.
    const EcmModel ecm(superMUCSocket());
    EXPECT_LE(ecm.saturationCores(), 7u);
    EXPECT_GE(ecm.saturationCores(), 4u);
    EXPECT_NEAR(ecm.predictMLUPS(8), 87.8, 0.2); // full socket hits roofline
    EXPECT_LT(ecm.predictMLUPS(1), 40.0);        // single core far below
    // Monotone non-decreasing in cores.
    for (unsigned c = 1; c < 8; ++c)
        EXPECT_LE(ecm.predictMLUPS(c), ecm.predictMLUPS(c + 1) + 1e-12);
}

TEST(Ecm, ReducedFrequencyKeepsMostPerformance) {
    // Paper §4.1 (Figure 4): at 1.6 GHz all eight cores are needed to
    // saturate, 93% of the 2.7 GHz performance is kept, ~25% less energy.
    const EcmModel fast(superMUCSocket(), KernelTier::Simd, 2.7);
    const EcmModel slow(superMUCSocket(), KernelTier::Simd, 1.6);
    const double ratio = slow.predictMLUPS(8) / fast.predictMLUPS(8);
    EXPECT_NEAR(ratio, 0.93, 0.02);
    EXPECT_EQ(slow.saturationCores(), 8u);
    const double energy = slow.relativeEnergyPerLUP(fast, 8);
    EXPECT_LT(energy, 0.85); // at least 15% saving
    EXPECT_GT(energy, 0.6);  // but not implausibly much
}

TEST(Ecm, KernelTierOrdering) {
    // Figure 3: generic < D3Q19 < SIMD at every core count; only SIMD
    // reaches the roofline.
    for (const auto& machine : {superMUCSocket(), juqueenNode()}) {
        const EcmModel generic(machine, KernelTier::Generic);
        const EcmModel d3q19(machine, KernelTier::D3Q19);
        const EcmModel simd(machine, KernelTier::Simd);
        for (unsigned c = 1; c <= machine.coresPerChip; ++c) {
            EXPECT_LE(generic.predictMLUPS(c), d3q19.predictMLUPS(c) + 1e-9);
            EXPECT_LE(d3q19.predictMLUPS(c), simd.predictMLUPS(c) + 1e-9);
        }
        EXPECT_LT(generic.predictMLUPS(machine.coresPerChip),
                  0.8 * simd.predictMLUPS(machine.coresPerChip))
            << machine.name;
    }
}

TEST(Ecm, SmtIsEssentialOnJuqueen) {
    // Figure 5: 4-way SMT saturates the node; 1-way falls well short.
    const auto machine = juqueenNode();
    const EcmModel smt1(machine, KernelTier::Simd, 0, 1);
    const EcmModel smt2(machine, KernelTier::Simd, 0, 2);
    const EcmModel smt4(machine, KernelTier::Simd, 0, 4);
    const double full = rooflineMLUPS(machine.usableBandwidthGiBs);
    EXPECT_LT(smt1.predictMLUPS(16), 0.75 * full);
    EXPECT_GT(smt4.predictMLUPS(16), 0.98 * full);
    EXPECT_LT(smt1.predictMLUPS(16), smt2.predictMLUPS(16));
    EXPECT_LT(smt2.predictMLUPS(16), smt4.predictMLUPS(16) + 1e-9);
    // On SuperMUC SMT gives nothing (paper: "no performance gain").
    const EcmModel snb1(superMUCSocket(), KernelTier::Simd, 0, 1);
    EXPECT_NEAR(snb1.predictMLUPS(8), 87.8, 0.2);
}

TEST(ScalingModel, JuqueenWeakScalingIsFlat) {
    // Figure 6b: MLUPS/core nearly constant from 2^5 to 2^19 cores; 92%
    // parallel efficiency at the full machine; MPI share stable.
    const ScalingModel model(juqueenNode(), torusNetwork());
    const ProcessConfig pure{64, 1};
    const auto base = model.weakScalingDense(1u << 5, pure, 1.728e6);
    const auto full = model.weakScalingDense(458752, pure, 1.728e6);
    EXPECT_GT(full.mlupsPerCore / base.mlupsPerCore, 0.9);
    EXPECT_NEAR(full.mpiFraction, base.mpiFraction, 0.05);
    // Total: paper reports 1.93 TLUPS on the full machine (0.5 MLUPS/core
    // resolution: 4.2 +- ~0.4 per core).
    EXPECT_NEAR(full.totalMLUPS / 1e6, 1.93, 0.35);
}

TEST(ScalingModel, SuperMucEfficiencyDropsAcrossIslands) {
    // Figure 6a: efficiency falls once the job spans multiple islands, and
    // the MPI fraction rises correspondingly.
    const ScalingModel model(superMUCSocket(), prunedTreeNetwork());
    const ProcessConfig pure{16, 1};
    const auto oneIsland = model.weakScalingDense(1u << 12, pure, 3.43e6);
    const auto sixteenIslands = model.weakScalingDense(1u << 17, pure, 3.43e6);
    EXPECT_LT(sixteenIslands.mlupsPerCore, 0.95 * oneIsland.mlupsPerCore);
    EXPECT_GT(sixteenIslands.mpiFraction, oneIsland.mpiFraction + 0.02);
    // Paper: 837 GLUPS at 2^17 cores -> ~6.4 MLUPS/core.
    EXPECT_NEAR(sixteenIslands.totalMLUPS / 1e6, 0.837, 0.25);
}

TEST(ScalingModel, HybridConfigsReduceMessageOverheadAtScale) {
    // Hybrid processes own larger subdomains: fewer, larger messages.
    const ScalingModel model(superMUCSocket(), prunedTreeNetwork());
    const auto pure = model.weakScalingDense(1u << 17, {16, 1}, 3.43e6);
    const auto hybrid = model.weakScalingDense(1u << 17, {2, 8}, 3.43e6);
    EXPECT_LT(hybrid.mpiFraction, pure.mpiFraction);
}

TEST(ScalingModel, StrongScalingSaturates) {
    // Figure 8 shape: time steps/s keeps rising with cores, but
    // MFLUPS/core decays as blocks shrink.
    const ScalingModel model(superMUCSocket(), prunedTreeNetwork());
    const double totalFluid = 2.1e6; // 0.1 mm resolution case
    double lastSteps = 0;
    double firstPerCore = 0, lastPerCore = 0;
    for (unsigned cores : {16u, 256u, 4096u, 32768u}) {
        DecompositionStats stats;
        stats.fluidCellsPerProcess = totalFluid / cores;
        stats.cellsPerProcess = stats.fluidCellsPerProcess * 2; // sparse blocks
        stats.blocksPerProcess = std::max(1.0, 32.0 * 16.0 / cores);
        stats.ghostBytesPerProcess =
            cubeGhostBytes(std::cbrt(stats.cellsPerProcess)) * stats.blocksPerProcess;
        stats.messagesPerProcess = 18.0 * stats.blocksPerProcess;
        stats.loadImbalance = 1.0 + 0.3 * std::log2(double(cores)) / 15.0; // grows mildly
        const auto p = model.fromDecomposition(cores, 1, stats);
        // Paper Figure 8a: time steps/s increase monotonically up to the
        // largest measured scale (11.4 -> 6638 steps/s), while efficiency
        // per core decays.
        EXPECT_GT(p.timeStepsPerSecond, lastSteps) << cores << " cores";
        lastSteps = p.timeStepsPerSecond;
        if (firstPerCore == 0) firstPerCore = p.mlupsPerCore;
        lastPerCore = p.mlupsPerCore;
    }
    EXPECT_LT(lastPerCore, 0.5 * firstPerCore); // efficiency decays
    // Paper: up to 6638 time steps/s in the strong scaling setting.
    EXPECT_GT(lastSteps, 1000.0);
}

TEST(Stream, LocalBandwidthMeasurementIsPlausible) {
    const StreamResult r = measureStreamBandwidth(16u << 20, 2);
    EXPECT_GT(r.copyGiBs, 0.5);    // any machine manages 0.5 GiB/s
    EXPECT_LT(r.copyGiBs, 2000.0); // and none reaches 2 TiB/s single-core
    EXPECT_GT(r.triadGiBs, 0.5);
    EXPECT_GT(r.lbmLikeGiBs, 0.5);
}

TEST(LocalBench, KernelMeasurementRunsAndOrdersSanely) {
    const auto generic = measureKernelMLUPS(KernelTier::Generic, true, 32, 3);
    const auto simd = measureKernelMLUPS(KernelTier::Simd, true, 32, 3);
    EXPECT_GT(generic.mlups, 0.05);
    EXPECT_GT(simd.mlups, 0.05);
    // SIMD should never lose to the generic textbook kernel.
    EXPECT_GE(simd.mlups, generic.mlups * 0.9);
    EXPECT_EQ(simd.cells, 32u * 32 * 32);
}

} // namespace
} // namespace walb::perf
