/// Kernel equivalence tests: the D3Q19-specialized and SIMD kernels (and the
/// three sparse strategies) must reproduce the generic textbook kernel.
/// This is the correctness backbone behind the paper's Figure 3 claim that
/// all optimization tiers compute the same method.

#include <gtest/gtest.h>

#include "core/Random.h"
#include "lbm/Boundary.h"
#include "lbm/KernelD3Q19.h"
#include "lbm/KernelD3Q19Simd.h"
#include "lbm/KernelGeneric.h"
#include "lbm/Sparse.h"

namespace walb::lbm {
namespace {

using field::Layout;

/// Fills a PDF field (including ghost layers) with a smooth + noisy state
/// that is positive and near equilibrium, so collisions stay in range.
void fillRandomState(PdfField& f, std::uint64_t seed) {
    Random rng(seed);
    f.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Vec3 u(0.02 * std::sin(0.3 * real_c(x)), 0.015 * std::cos(0.2 * real_c(y)),
                     -0.01 * std::sin(0.25 * real_c(z)));
        const real_t rho = real_c(1) + real_c(0.02) * std::sin(0.1 * real_c(x + y + z));
        for (uint_t a = 0; a < D3Q19::Q; ++a)
            f.get(x, y, z, cell_idx_c(a)) =
                equilibrium<D3Q19>(a, rho, u) * (real_c(1) + real_c(0.01) * rng.uniform(-1, 1));
    });
}

void expectFieldsNear(const PdfField& a, const PdfField& b, real_t tol) {
    real_t maxDiff = 0;
    a.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (uint_t q = 0; q < D3Q19::Q; ++q)
            maxDiff = std::max(maxDiff, std::abs(a.get(x, y, z, cell_idx_c(q)) -
                                                 b.get(x, y, z, cell_idx_c(q))));
    });
    EXPECT_LE(maxDiff, tol);
}

struct KernelCase {
    real_t omega;
    bool trt;
};

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {
protected:
    static constexpr cell_idx_t N = 11; // odd, not SIMD-width aligned: tests tails

    template <typename RunRef, typename RunOpt>
    void compare(RunRef&& reference, RunOpt&& optimized, real_t tol) {
        PdfField src = makePdfField<D3Q19>(N, N + 2, N - 2, Layout::fzyx);
        fillRandomState(src, 5);
        PdfField dstRef = makePdfField<D3Q19>(N, N + 2, N - 2, Layout::fzyx);
        PdfField dstOpt = makePdfField<D3Q19>(N, N + 2, N - 2, Layout::fzyx);
        reference(src, dstRef);
        optimized(src, dstOpt);
        expectFieldsNear(dstRef, dstOpt, tol);
    }
};

TEST_P(KernelEquivalence, D3Q19SpecializedMatchesGeneric) {
    const auto p = GetParam();
    compare(
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) streamCollideGeneric<D3Q19>(s, d, TRT::fromOmegaAndMagic(p.omega));
            else streamCollideGeneric<D3Q19>(s, d, SRT(p.omega));
        },
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) streamCollideD3Q19(s, d, TRT::fromOmegaAndMagic(p.omega));
            else streamCollideD3Q19(s, d, SRT(p.omega));
        },
        1e-13);
}

TEST_P(KernelEquivalence, SimdMatchesGeneric) {
    const auto p = GetParam();
    KernelD3Q19Simd<> kernel;
    compare(
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) streamCollideGeneric<D3Q19>(s, d, TRT::fromOmegaAndMagic(p.omega));
            else streamCollideGeneric<D3Q19>(s, d, SRT(p.omega));
        },
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) kernel.sweep(s, d, TRT::fromOmegaAndMagic(p.omega));
            else kernel.sweep(s, d, SRT(p.omega));
        },
        1e-13);
}

TEST_P(KernelEquivalence, ScalarBackendSimdMatchesGeneric) {
    const auto p = GetParam();
    KernelD3Q19Simd<simd::ScalarD> kernel;
    compare(
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) streamCollideGeneric<D3Q19>(s, d, TRT::fromOmegaAndMagic(p.omega));
            else streamCollideGeneric<D3Q19>(s, d, SRT(p.omega));
        },
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) kernel.sweep(s, d, TRT::fromOmegaAndMagic(p.omega));
            else kernel.sweep(s, d, SRT(p.omega));
        },
        1e-13);
}

#if defined(__SSE2__)
TEST_P(KernelEquivalence, SseBackendMatchesAvxBackend) {
    const auto p = GetParam();
    KernelD3Q19Simd<simd::SseD> sse;
    KernelD3Q19Simd<simd::BestD> best;
    compare(
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) sse.sweep(s, d, TRT::fromOmegaAndMagic(p.omega));
            else sse.sweep(s, d, SRT(p.omega));
        },
        [&](const PdfField& s, PdfField& d) {
            if (p.trt) best.sweep(s, d, TRT::fromOmegaAndMagic(p.omega));
            else best.sweep(s, d, SRT(p.omega));
        },
        1e-14);
}
#endif

TEST_P(KernelEquivalence, GenericKernelWorksOnAoSLayout) {
    const auto p = GetParam();
    PdfField srcSoA = makePdfField<D3Q19>(N, N, N, Layout::fzyx);
    PdfField srcAoS = makePdfField<D3Q19>(N, N, N, Layout::zyxf);
    fillRandomState(srcSoA, 5);
    fillRandomState(srcAoS, 5);
    PdfField dstSoA = makePdfField<D3Q19>(N, N, N, Layout::fzyx);
    PdfField dstAoS = makePdfField<D3Q19>(N, N, N, Layout::zyxf);
    if (p.trt) {
        streamCollideGeneric<D3Q19>(srcSoA, dstSoA, TRT::fromOmegaAndMagic(p.omega));
        streamCollideGeneric<D3Q19>(srcAoS, dstAoS, TRT::fromOmegaAndMagic(p.omega));
    } else {
        streamCollideGeneric<D3Q19>(srcSoA, dstSoA, SRT(p.omega));
        streamCollideGeneric<D3Q19>(srcAoS, dstAoS, SRT(p.omega));
    }
    expectFieldsNear(dstSoA, dstAoS, 0.0); // identical arithmetic => bitwise equal
}

INSTANTIATE_TEST_SUITE_P(Operators, KernelEquivalence,
                         ::testing::Values(KernelCase{0.6, false}, KernelCase{1.2, false},
                                           KernelCase{1.9, false}, KernelCase{0.6, true},
                                           KernelCase{1.2, true}, KernelCase{1.9, true}),
                         [](const auto& tinfo) {
                             return std::string(tinfo.param.trt ? "TRT" : "SRT") + "_omega" +
                                    std::to_string(int(tinfo.param.omega * 10));
                         });

// ---- sparse kernels --------------------------------------------------------

class SparseKernels : public ::testing::Test {
protected:
    static constexpr cell_idx_t N = 14;

    void SetUp() override {
        flags_ = std::make_unique<field::FlagField>(N, N, N, 1);
        fluid_ = flags_->registerFlag(kFluidFlag);
        // A sparse pattern: a cylinder-ish tube of fluid through the block,
        // mimicking a vessel crossing a block.
        flags_->forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const real_t dy = real_c(y) - real_c(N) / 2;
            const real_t dz = real_c(z) - real_c(N) / 2;
            if (dy * dy + dz * dz < 16.0 + 3.0 * std::sin(0.7 * real_c(x)))
                flags_->addFlag(x, y, z, fluid_);
        });
    }

    std::unique_ptr<field::FlagField> flags_;
    field::flag_t fluid_ = 0;
};

TEST_F(SparseKernels, RunListCoversExactlyTheFluidCells) {
    const FluidRunList list = buildFluidRuns(*flags_, fluid_);
    EXPECT_EQ(list.fluidCells, flags_->count(fluid_));
    field::FlagField seen(N, N, N, 1);
    const auto mark = seen.registerFlag("seen");
    for (const auto& r : list.runs) {
        EXPECT_LE(r.xBegin, r.xEnd);
        for (cell_idx_t x = r.xBegin; x <= r.xEnd; ++x) {
            EXPECT_TRUE(flags_->isFlagSet(x, r.y, r.z, fluid_));
            EXPECT_FALSE(seen.isFlagSet(x, r.y, r.z, mark)) << "cell covered twice";
            seen.addFlag(x, r.y, r.z, mark);
        }
    }
    EXPECT_EQ(seen.count(mark), list.fluidCells);
}

TEST_F(SparseKernels, RunsAreMaximal) {
    const FluidRunList list = buildFluidRuns(*flags_, fluid_);
    for (const auto& r : list.runs) {
        if (r.xBegin > 0) { EXPECT_FALSE(flags_->isFlagSet(r.xBegin - 1, r.y, r.z, fluid_)); }
        if (r.xEnd < N - 1) { EXPECT_FALSE(flags_->isFlagSet(r.xEnd + 1, r.y, r.z, fluid_)); }
    }
}

TEST_F(SparseKernels, CellListMatchesFlagCount) {
    const auto cells = buildFluidCellList(*flags_, fluid_);
    EXPECT_EQ(cells.size(), flags_->count(fluid_));
}

TEST_F(SparseKernels, AllThreeStrategiesMatchConditionalKernel) {
    PdfField src = makePdfField<D3Q19>(N, N, N, Layout::fzyx);
    fillRandomState(src, 77);
    const TRT op = TRT::fromOmegaAndMagic(1.4);

    PdfField dstCond = makePdfField<D3Q19>(N, N, N, Layout::fzyx);
    streamCollideD3Q19(src, dstCond, op, flags_.get(), fluid_); // strategy 1

    PdfField dstList = makePdfField<D3Q19>(N, N, N, Layout::fzyx);
    streamCollideCellList(src, dstList, buildFluidCellList(*flags_, fluid_), op); // strategy 2

    PdfField dstRuns = makePdfField<D3Q19>(N, N, N, Layout::fzyx);
    KernelD3Q19Simd<> simdKernel;
    streamCollideIntervals(src, dstRuns, buildFluidRuns(*flags_, fluid_), op,
                           simdKernel); // strategy 3

    // Compare on fluid cells only (non-fluid cells are untouched garbage).
    flags_->forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (!flags_->isFlagSet(x, y, z, fluid_)) return;
        for (uint_t a = 0; a < D3Q19::Q; ++a) {
            EXPECT_NEAR(dstList.get(x, y, z, cell_idx_c(a)),
                        dstCond.get(x, y, z, cell_idx_c(a)), 1e-15);
            EXPECT_NEAR(dstRuns.get(x, y, z, cell_idx_c(a)),
                        dstCond.get(x, y, z, cell_idx_c(a)), 1e-13);
        }
    });
}

TEST_F(SparseKernels, DenseFlagFieldDegeneratesToDenseKernel) {
    field::FlagField dense(N, N, N, 1);
    const auto fl = dense.registerFlag(kFluidFlag);
    dense.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        dense.addFlag(x, y, z, fl);
    });
    const FluidRunList list = buildFluidRuns(dense, fl);
    EXPECT_EQ(list.runs.size(), std::size_t(N * N)); // one run per line
    EXPECT_EQ(list.fluidCells, uint_c(N * N * N));
}

} // namespace
} // namespace walb::lbm
