/// Tests for observability v2: the FlightRecorder ring + `.wfr` dump/read
/// round trip (including CRC tamper rejection), the PerfDiag statistics
/// helpers and the StragglerDetector (pure judge() cases, the collective
/// detect(), and the end-to-end throttled-rank drill through a 4-rank
/// DistributedSimulation), the automatic `.wfr` dump on CommError /
/// HealthError, and the trace dropped-events surfacing.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/FlightRecorder.h"
#include "obs/PerfDiag.h"
#include "obs/Trace.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/FaultyComm.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

using namespace std::chrono_literals;

namespace walb {
namespace {

obs::StepSample sampleAt(std::uint64_t step, double seconds = 1e-3) {
    obs::StepSample s;
    s.step = step;
    s.collideSeconds = 0.7 * seconds;
    s.shellSeconds = 0.1 * seconds;
    s.boundarySeconds = 0.05 * seconds;
    s.packSeconds = 0.05 * seconds;
    s.exchangeSeconds = 0.1 * seconds;
    s.totalSeconds = seconds;
    s.mlups = seconds > 0 ? 1.0 / seconds : 0;
    s.imbalance = 1.25;
    s.bytesMoved = 4096 + step;
    s.messages = 6;
    return s;
}

// ---- FlightRecorder ring ---------------------------------------------------

TEST(FlightRecorder, RingKeepsTheMostRecentSamplesInOrder) {
    obs::FlightRecorder fr(4);
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.latest(), nullptr);
    for (std::uint64_t step = 0; step < 10; ++step) fr.record(sampleAt(step));
    EXPECT_EQ(fr.capacity(), 4u);
    EXPECT_EQ(fr.size(), 4u);
    EXPECT_EQ(fr.totalRecorded(), 10u);
    const auto samples = fr.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples.front().step, 6u); // oldest retained
    EXPECT_EQ(samples.back().step, 9u);  // newest
    ASSERT_NE(fr.latest(), nullptr);
    EXPECT_EQ(fr.latest()->step, 9u);
    fr.clear();
    EXPECT_EQ(fr.size(), 0u);
}

TEST(FlightRecorder, DisabledRecorderRecordsNothing) {
    obs::FlightRecorder fr(8);
    fr.setEnabled(false);
    fr.record(sampleAt(0));
    EXPECT_EQ(fr.size(), 0u);
    EXPECT_EQ(fr.totalRecorded(), 0u);
    fr.setEnabled(true);
    fr.record(sampleAt(1));
    EXPECT_EQ(fr.size(), 1u);
}

TEST(FlightRecorder, CollideSecondsSinceReportsWindowCompleteness) {
    obs::FlightRecorder fr(4);
    for (std::uint64_t step = 0; step < 3; ++step) fr.record(sampleAt(step, 1e-3));
    bool complete = false;
    // Ring still holds everything since step 0.
    EXPECT_NEAR(fr.collideSecondsSince(0, &complete), 3 * 0.7e-3, 1e-12);
    EXPECT_TRUE(complete);
    for (std::uint64_t step = 3; step < 8; ++step) fr.record(sampleAt(step, 1e-3));
    // Steps 0..3 were evicted: the sum covers only the retained tail.
    const double partial = fr.collideSecondsSince(0, &complete);
    EXPECT_FALSE(complete);
    EXPECT_NEAR(partial, 4 * 0.7e-3, 1e-12);
    // A window starting inside the retained range is complete again.
    EXPECT_NEAR(fr.collideSecondsSince(5, &complete), 3 * 0.7e-3, 1e-12);
    EXPECT_TRUE(complete);
}

TEST(FlightRecorder, MeanStepSecondsOverTheLastN) {
    obs::FlightRecorder fr(8);
    for (std::uint64_t step = 0; step < 4; ++step)
        fr.record(sampleAt(step, double(step + 1) * 1e-3)); // 1,2,3,4 ms
    EXPECT_NEAR(fr.meanStepSeconds(2), 3.5e-3, 1e-12);
    EXPECT_NEAR(fr.meanStepSeconds(0), 2.5e-3, 1e-12);  // 0 = all retained
    EXPECT_NEAR(fr.meanStepSeconds(99), 2.5e-3, 1e-12); // clamped to size
}

// ---- .wfr dump / read ------------------------------------------------------

TEST(WfrFormat, DumpReadRoundTripPreservesEverySample) {
    const std::string path = testing::TempDir() + "/walb_roundtrip.wfr";
    obs::FlightRecorder fr(16);
    for (std::uint64_t step = 0; step < 5; ++step)
        fr.record(sampleAt(step, double(step + 1) * 1e-4));
    std::string err;
    ASSERT_TRUE(fr.dump(path, /*rank=*/3, /*worldSize=*/8, &err)) << err;

    obs::FlightRecorder::Dump dump;
    ASSERT_TRUE(obs::FlightRecorder::read(path, dump, &err)) << err;
    EXPECT_EQ(dump.version, obs::FlightRecorder::kFormatVersion);
    EXPECT_EQ(dump.rank, 3u);
    EXPECT_EQ(dump.worldSize, 8u);
    ASSERT_EQ(dump.samples.size(), 5u);
    for (std::uint64_t step = 0; step < 5; ++step) {
        const obs::StepSample& got = dump.samples[step];
        const obs::StepSample want = sampleAt(step, double(step + 1) * 1e-4);
        EXPECT_EQ(got.step, want.step);
        EXPECT_DOUBLE_EQ(got.collideSeconds, want.collideSeconds);
        EXPECT_DOUBLE_EQ(got.shellSeconds, want.shellSeconds);
        EXPECT_DOUBLE_EQ(got.boundarySeconds, want.boundarySeconds);
        EXPECT_DOUBLE_EQ(got.packSeconds, want.packSeconds);
        EXPECT_DOUBLE_EQ(got.exchangeSeconds, want.exchangeSeconds);
        EXPECT_DOUBLE_EQ(got.totalSeconds, want.totalSeconds);
        EXPECT_DOUBLE_EQ(got.mlups, want.mlups);
        EXPECT_DOUBLE_EQ(got.imbalance, want.imbalance);
        EXPECT_EQ(got.bytesMoved, want.bytesMoved);
        EXPECT_EQ(got.messages, want.messages);
    }
    std::remove(path.c_str());
}

TEST(WfrFormat, CrcRejectsATamperedFile) {
    const std::string path = testing::TempDir() + "/walb_tamper.wfr";
    obs::FlightRecorder fr(8);
    for (std::uint64_t step = 0; step < 3; ++step) fr.record(sampleAt(step));
    ASSERT_TRUE(fr.dump(path, 0, 1));

    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(24); // inside the header/payload, after the magic
        f.put('\x7f');
    }
    obs::FlightRecorder::Dump dump;
    std::string err;
    EXPECT_FALSE(obs::FlightRecorder::read(path, dump, &err));
    EXPECT_NE(err.find("CRC"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(WfrFormat, MissingAndTruncatedFilesAreDiagnosed) {
    obs::FlightRecorder::Dump dump;
    std::string err;
    EXPECT_FALSE(obs::FlightRecorder::read(testing::TempDir() + "/nope.wfr", dump, &err));
    EXPECT_FALSE(err.empty());

    const std::string path = testing::TempDir() + "/walb_trunc.wfr";
    obs::FlightRecorder fr(8);
    fr.record(sampleAt(0));
    ASSERT_TRUE(fr.dump(path, 0, 1));
    // Chop the trailer off.
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size() / 2));
    out.close();
    EXPECT_FALSE(obs::FlightRecorder::read(path, dump, &err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

// ---- PerfDiag statistics helpers -------------------------------------------

TEST(PerfDiagStats, SortedQuantileInterpolatesOrderStatistics) {
    EXPECT_DOUBLE_EQ(obs::sortedQuantile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(obs::sortedQuantile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(obs::sortedQuantile({7.0}, 1.0), 7.0);
    const std::vector<double> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(obs::sortedQuantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(obs::sortedQuantile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(obs::sortedQuantile(v, 0.5), 2.5);
}

TEST(PerfDiagStats, MedianAndMad) {
    EXPECT_DOUBLE_EQ(obs::median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(obs::medianAbsDeviation({1.0, 1.0, 1.0, 1.0}, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(obs::medianAbsDeviation({1.0, 2.0, 3.0}, 2.0), 1.0);
}

TEST(PerfDiagStats, LogHistogramEdgesSpanTheRange) {
    const auto edges = obs::logHistogramEdges(1e-6, 10.0, 4);
    ASSERT_GE(edges.size(), 2u);
    for (std::size_t i = 1; i < edges.size(); ++i) EXPECT_GT(edges[i], edges[i - 1]);
    EXPECT_LE(edges.front(), 1e-6 * std::pow(10.0, 0.25) + 1e-12);
    EXPECT_GE(edges.back(), 10.0 - 1e-9);
}

// ---- StragglerDetector: pure judge() ---------------------------------------

TEST(StragglerJudge, FlagsTheSlowRankEvenWithZeroMad) {
    const obs::StragglerDetector d;
    // Three identical ranks (MAD = 0) and one 2x rank: the MAD term alone
    // degenerates here, the dual relative condition must still fire.
    const auto v = d.judge({1e-3, 1e-3, 1e-3, 2e-3}, 42);
    EXPECT_EQ(v.step, 42u);
    EXPECT_DOUBLE_EQ(v.median, 1e-3);
    ASSERT_EQ(v.stragglers.size(), 1u);
    EXPECT_EQ(v.stragglers[0], 3);
    EXPECT_TRUE(v.isStraggler(3));
    EXPECT_FALSE(v.isStraggler(0));
}

TEST(StragglerJudge, UniformFleetAndSmallJitterStayClean) {
    const obs::StragglerDetector d;
    EXPECT_TRUE(d.judge({1e-3, 1e-3, 1e-3, 1e-3}, 1).stragglers.empty());
    // 20% jitter is well under the 1.5x relative threshold.
    EXPECT_TRUE(d.judge({1.0e-3, 1.1e-3, 0.9e-3, 1.2e-3}, 2).stragglers.empty());
    // Degenerate worlds cannot have stragglers.
    EXPECT_TRUE(d.judge({}, 3).stragglers.empty());
    EXPECT_TRUE(d.judge({5e-3}, 4).stragglers.empty());
}

TEST(StragglerJudge, NoisyFleetNeedsTheMadTermToo) {
    // Median 1.0, MAD large (0.5): a rank at 1.6 exceeds 1.5x the median
    // but sits inside the fleet's own spread — must NOT be flagged.
    const obs::StragglerDetector d;
    const auto v = d.judge({0.5, 1.0, 1.5, 1.6, 0.4}, 7);
    EXPECT_TRUE(v.stragglers.empty()) << "flagged inside fleet noise";
}

TEST(StragglerDetector, EwmaSeedsOnFirstSampleThenSmooths) {
    obs::StragglerDetector d(0.5);
    EXPECT_FALSE(d.hasSample());
    d.record(4e-3);
    EXPECT_TRUE(d.hasSample());
    EXPECT_DOUBLE_EQ(d.ewma(), 4e-3); // seeded, not scaled by alpha
    d.record(2e-3);
    EXPECT_DOUBLE_EQ(d.ewma(), 3e-3);
    EXPECT_DOUBLE_EQ(d.lastImbalance(), 1.0); // no detection epoch yet
}

// ---- StragglerDetector: collective detect() --------------------------------

TEST(StragglerDetector, DetectAgreesOnEveryRank) {
    std::atomic<int> flaggedVerdicts{0};
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        obs::StragglerDetector d;
        // Rank 2 is 3x slower than the rest.
        d.record(comm.rank() == 2 ? 3e-3 : 1e-3);
        const obs::StragglerVerdict v = d.detect(comm, 5);
        EXPECT_EQ(v.step, 5u);
        ASSERT_EQ(v.ewmaByRank.size(), 4u);
        EXPECT_DOUBLE_EQ(v.median, 1e-3);
        if (v.stragglers == std::vector<int>{2}) ++flaggedVerdicts;
        // After the epoch every rank knows its own fleet-relative factor.
        EXPECT_NEAR(d.lastImbalance(), comm.rank() == 2 ? 3.0 : 1.0, 1e-9);
    });
    EXPECT_EQ(flaggedVerdicts.load(), 4); // the verdict is identical everywhere
}

// ---- end-to-end: throttled rank through DistributedSimulation --------------

bf::SetupBlockForest makeBoxSetup(std::uint32_t ranks) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8.0 * ranks, 8, 8);
    cfg.rootBlocksX = ranks;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    return setup;
}

sim::DistributedSimulation::FlagInitializer boxFlags(std::uint32_t ranks) {
    const cell_idx_t NX = 8 * cell_idx_c(ranks);
    return [NX](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                const bf::BlockForest::Block&, const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > real_c(NX) || p[1] > 8 ||
                p[2] > 8)
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.x == 0 || g.x == NX - 1 || g.y == 0 || g.y == 7 || g.z == 0 ||
                g.z == 7)
                flags.addFlag(x, y, z, masks.noSlip);
            else
                flags.addFlag(x, y, z, masks.fluid);
        });
    };
}

TEST(StragglerEndToEnd, ThrottledRankIsFlaggedWithinTwentySteps) {
    auto setup = makeBoxSetup(4);
    auto flagInit = boxFlags(4);
    std::atomic<int> flagged{0};
    std::atomic<long long> latency{-1};
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        const auto op = lbm::TRT::fromOmegaAndMagic(1.5);
        constexpr uint_t kWarmup = 10, kDrill = 40;
        simulation.run(kWarmup, op);
        const double mean = simulation.flightRecorder().meanStepSeconds(5);
        ASSERT_GT(mean, 0.0);
        if (comm.rank() == 1)
            simulation.setSweepThrottle(
                std::chrono::microseconds(std::int64_t(mean * 1e6)));
        sim::DistributedSimulation::StragglerOptions opt;
        opt.detectEvery = 5;
        simulation.enableStragglerDetection(opt);
        simulation.run(kDrill, op);
        const std::int64_t first = simulation.firstStragglerDetectedStep();
        if (first >= 0 && simulation.lastStragglerVerdict().isStraggler(1)) ++flagged;
        if (comm.rank() == 0) latency = first - std::int64_t(kWarmup);
        // The per-sample imbalance estimate reaches the flight recorder.
        ASSERT_NE(simulation.flightRecorder().latest(), nullptr);
        if (comm.rank() == 1) {
            EXPECT_GT(simulation.flightRecorder().latest()->imbalance, 1.2);
        }
        // perf gauges: reference + efficiency surface after a run.
        simulation.setPerfReference(10.0);
        simulation.run(1, op);
        EXPECT_DOUBLE_EQ(simulation.metrics().gauge("perf.predicted_mlups").value(),
                         10.0);
        EXPECT_GT(simulation.metrics().gauge("perf.efficiency").value(), 0.0);
    });
    EXPECT_EQ(flagged.load(), 4) << "verdict must agree on every rank";
    EXPECT_GE(latency.load(), 0);
    EXPECT_LE(latency.load(), 20) << "straggler flagged too slowly";
}

// ---- automatic .wfr dumps on failure ---------------------------------------

// Dump names embed the step at the dump moment (`<prefix>.r<rank>.s<step>.wfr`),
// which varies per rank in a fault drill — locate by prefix + rank instead of
// an exact path. Returns every match (normally exactly one).
std::vector<std::string> findWfrDumps(const std::string& prefix, int rank) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::path(prefix).parent_path();
    const std::string stem =
        fs::path(prefix).filename().string() + ".r" + std::to_string(rank) + ".s";
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(dir)) {
        const std::string name = e.path().filename().string();
        if (name.rfind(stem, 0) == 0 && name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".wfr") == 0)
            out.push_back(e.path().string());
    }
    return out;
}

TEST(FaultDrill, EveryRankDumpsItsFlightHistoryWhenARankDies) {
    auto setup = makeBoxSetup(4);
    auto flagInit = boxFlags(4);
    const std::string prefix = testing::TempDir() + "/walb_kill_drill";
    for (int rank = 0; rank < 4; ++rank)
        for (const std::string& stale : findWfrDumps(prefix, rank))
            std::remove(stale.c_str());

    vmpi::FaultPlan plan;
    plan.killRank = 2;
    plan.killAtStep = 6;
    std::atomic<int> structured{0};
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(2000ms);
        sim::DistributedSimulation simulation(faulty, setup, flagInit);
        simulation.setFlightRecorderDumpPrefix(prefix);
        simulation.setPreStepCallback(
            [&](std::uint64_t step) { faulty.beginStep(step); });
        try {
            simulation.run(20, lbm::TRT::fromOmegaAndMagic(1.5));
            ADD_FAILURE() << "rank " << comm.rank() << " finished despite the kill";
        } catch (const vmpi::CommError&) {
            ++structured;
        }
    });
    EXPECT_EQ(structured.load(), 4);

    // Every rank — the killed one included — left a CRC-clean dump with the
    // per-step history that led up to the failure.
    for (int rank = 0; rank < 4; ++rank) {
        const std::vector<std::string> paths = findWfrDumps(prefix, rank);
        ASSERT_EQ(paths.size(), 1u) << "rank " << rank << " left " << paths.size()
                                    << " dumps, expected exactly one";
        obs::FlightRecorder::Dump dump;
        std::string err;
        ASSERT_TRUE(obs::FlightRecorder::read(paths[0], dump, &err))
            << paths[0] << ": " << err;
        EXPECT_EQ(dump.rank, std::uint32_t(rank));
        EXPECT_EQ(dump.worldSize, 4u);
        EXPECT_GE(dump.samples.size(), 5u) << "history too short to diagnose";
        std::remove(paths[0].c_str());
    }
}

TEST(FaultDrill, HealthViolationDumpsTheFlightHistory) {
    auto setup = makeBoxSetup(1);
    const std::string prefix = testing::TempDir() + "/walb_health_drill";
    for (const std::string& stale : findWfrDumps(prefix, 0))
        std::remove(stale.c_str());

    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(comm, setup, boxFlags(1));
    simulation.setFlightRecorderDumpPrefix(prefix);
    sim::HealthPolicy policy;
    policy.checkEvery = 2;
    policy.emergencyCheckpoint = false;
    simulation.attachHealthMonitor(policy);
    simulation.run(2, lbm::TRT::fromOmegaAndMagic(1.5));
    simulation.pdfField(0).get(4, 4, 4, 0) = std::nan("");
    EXPECT_THROW(simulation.run(2, lbm::TRT::fromOmegaAndMagic(1.5)), sim::HealthError);

    const std::vector<std::string> paths = findWfrDumps(prefix, 0);
    ASSERT_EQ(paths.size(), 1u);
    obs::FlightRecorder::Dump dump;
    std::string err;
    ASSERT_TRUE(obs::FlightRecorder::read(paths[0], dump, &err)) << err;
    EXPECT_EQ(dump.worldSize, 1u);
    EXPECT_GE(dump.samples.size(), 3u);
    std::remove(paths[0].c_str());
}

// ---- trace dropped-events surfacing ----------------------------------------

TEST(TraceDropped, GatherDroppedSumsAllRanks) {
    std::atomic<std::uint64_t> total{0};
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        obs::TraceRecorder rec(comm.rank(), /*maxEvents=*/2);
        for (int i = 0; i < 5; ++i) {
            rec.begin("phase");
            rec.end();
        }
        EXPECT_EQ(rec.dropped(), 3u);
        const std::uint64_t sum = obs::TraceRecorder::gatherDropped(comm, rec);
        EXPECT_EQ(sum, 6u); // identical on both ranks
        if (comm.rank() == 0) total = sum;
    });
    EXPECT_EQ(total.load(), 6u);
}

} // namespace
} // namespace walb
