// Fixture: banned constructs inside a deterministic region. Outside the
// region the same constructs are fine (control at the bottom).
#include <random>

// walb-lint: begin(deterministic)
std::uint64_t digest(const std::vector<std::uint32_t>& data) {
    std::mt19937 rng(42);                    // line 7: randomness
    double acc = 0;                          // line 8: float accumulation
    std::uint64_t h = std::uint64_t(time(nullptr)); // line 9: clock
    for (auto v : data) h ^= v + rng();
    (void)acc;
    return h + sizeof(double); // sizeof(double) is allowed
}
// walb-lint: end(deterministic)

double outsideRegionIsFine() {
    std::mt19937 rng(7);
    return double(rng()) / 2.0;
}
