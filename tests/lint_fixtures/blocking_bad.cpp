// Fixture: every blocking call here is unguarded — walb_lint must flag
// each one. test_lint.cpp asserts the exact (rule, line) set, so keep the
// line numbers stable when editing.
#include <vector>

void unguarded(walb::vmpi::Comm& comm) {
    auto bytes = comm.recv(0, kTag);                 // line 7: recv
    comm.barrier();                                  // line 8: barrier
    comm.broadcast(bytes, 0);                        // line 9: broadcast
    double v = walb::vmpi::allreduceSum(comm, 1.0);  // line 10: helper
    (void)v;
}

void guardInWrongScope(walb::vmpi::Comm& comm) {
    {
        comm.setRecvDeadline(std::chrono::seconds(5));
    } // deadline scope closed: the recv below is NOT guarded
    auto bytes = comm.recv(1, kTag);                 // line 18: recv
    (void)bytes;
}
