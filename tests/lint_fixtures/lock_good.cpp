// Fixture: lock discipline done right — lock-scope must report nothing.
#include <mutex>

void commOutsideLock(walb::vmpi::Comm& comm, std::mutex& m,
                     std::vector<std::uint8_t> data) {
    {
        std::lock_guard<std::mutex> lk(m);
        prepare(data);
    }
    comm.send(1, kTag, std::move(data)); // lock scope already closed
}

void predicateWait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                   bool& ready) {
    cv.wait(lk, [&] { return ready; }); // predicate form: always fine
}

void loopedBareWait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                    bool& ready) {
    while (!ready) cv.wait(lk); // bare wait inside a retry loop: fine
}

void annotatedSend(walb::vmpi::Comm& comm, std::mutex& m,
                   std::vector<std::uint8_t> data) {
    std::lock_guard<std::mutex> lk(m);
    // walb-lint: allow(lock-scope): fixture — non-blocking mailbox push
    comm.send(1, kTag, std::move(data));
}
