// Fixture: AA-pattern instrumentation against the metric registry. The
// in-place tier's footprint gauge "mem.pdf_bytes" IS declared (control:
// not flagged); the near-miss typo and an ad-hoc parity counter are not.
void recordAaFootprint(walb::obs::MetricsRegistry& metrics, long bytes) {
    metrics.gauge("mem.pdf_bytes").set(double(bytes)); // declared: ok
    metrics.gauge("mem.pdf_byte").set(double(bytes));  // line 6: typo
    metrics.counter("aa.parity_flips").inc();          // line 7: undeclared
}
