// Fixture: comm/logging calls under a held mutex and a predicate-less
// condition-variable wait outside a retry loop — lock-scope must flag each.
#include <mutex>

void commUnderLock(walb::vmpi::Comm& comm, std::mutex& m,
                   std::vector<std::uint8_t> data) {
    std::lock_guard<std::mutex> lk(m);
    comm.send(1, kTag, std::move(data)); // line 8: send under lock
    comm.barrier();                      // line 9: barrier under lock
    WALB_LOG_INFO("under lock");         // line 10: logging under lock
}

void bareWait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk) {
    cv.wait(lk); // line 14: predicate-less wait, no enclosing retry loop
}
