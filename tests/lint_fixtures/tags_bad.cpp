// Fixture: integer tag literals at comm call sites and a tag constant
// declared outside the registry — all must be flagged by tag-registry.
#include <vector>

constexpr int kLocalTag = 123; // line 5: stray tag constant

void literals(walb::vmpi::Comm& comm, std::vector<std::uint8_t> data) {
    comm.send(1, 42, std::move(data));        // line 8: literal tag
    auto bytes = comm.recv(1, 42);            // line 9: literal tag
    std::vector<std::uint8_t> out;
    comm.tryRecv(1, -7, out);                 // line 11: literal tag
    (void)bytes;
}
