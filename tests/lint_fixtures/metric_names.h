// Fixture metric-name registry for test_lint.cpp. "dup.name" is declared
// twice on purpose: loading this file must yield one metric-name
// violation at the second declaration (line 9).
#pragma once
// walb-lint: metric-names-begin
#define FIXTURE_METRIC_NAMES(X) \
    X("sim.steps")              \
    X("dup.name")               \
    X("dup.name")
// walb-lint: metric-names-end
