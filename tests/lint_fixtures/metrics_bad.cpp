// Fixture: metric names not declared in the registry — metric-name must
// flag each use. "sim.steps" IS declared (control: not flagged).
void record(walb::obs::MetricsRegistry& metrics) {
    metrics.counter("sim.steps").inc();          // declared: ok
    metrics.counter("sim.stesp").inc();          // line 5: typo
    metrics.gauge("lint.unknown_gauge").set(1);  // line 6: undeclared
    metrics.histogram("lint.unknown_hist", edges()).observe(0.5); // line 7
}
