// Fixture registry: disjoint bands, every tag inside its band, no value
// reachable from another band under epoch shifting — loads clean.
#pragma once

// walb-lint: tag-stride
inline constexpr int kEpochTagStride = 1 << 20;

// walb-lint: tag-band(user, 0, 1023)
inline constexpr int kPayload = 7;
inline constexpr int kControl = 8;

// walb-lint: tag-band(oob, -9000, -8000)
inline constexpr int kOob = -8500;
