// Fixture: every blocking call here is either deadline-guarded or
// annotated — walb_lint must report nothing.
#include <vector>

void deadlineGuarded(walb::vmpi::Comm& comm) {
    comm.setRecvDeadline(std::chrono::seconds(5));
    auto bytes = comm.recv(0, kTag); // guarded: deadline in this scope
    comm.barrier();                  // guarded: same enclosing scope
    (void)bytes;
}

void guardedFromOuterScope(walb::vmpi::Comm& comm) {
    comm.setRecvDeadline(std::chrono::seconds(5));
    for (int i = 0; i < 3; ++i) {
        auto bytes = comm.recv(i, kTag); // guarded: deadline in outer scope
        (void)bytes;
    }
}

void annotated(walb::vmpi::Comm& comm) {
    // walb-lint: allow(blocking): fixture — reason text goes here
    comm.barrier();
    comm.barrier(); // walb-lint: allow(blocking): same-line form
}

void nonBlockingIsFine(walb::vmpi::Comm& comm) {
    std::vector<std::uint8_t> out;
    while (comm.tryRecv(0, kTag, out)) consume(out);
}
