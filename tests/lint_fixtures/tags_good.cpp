// Fixture: tags taken from the registry (or forwarded as variables) —
// tag-registry must report nothing.
#include <vector>

void fromRegistry(walb::vmpi::Comm& comm, std::vector<std::uint8_t> data) {
    comm.send(1, walb::vmpi::tags::kGhostExchange, std::move(data));
    auto bytes = comm.recv(1, walb::vmpi::tags::kGhostExchange);
    (void)bytes;
}

void forwarded(walb::vmpi::Comm& comm, int tag) {
    std::vector<std::uint8_t> out;
    comm.tryRecv(0, tag, out); // variable tags are the decorator-forward case
}
