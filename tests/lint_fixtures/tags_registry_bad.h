// Fixture registry: four registry-consistency violations. Bands "a" and
// "b" overlap; kOutOfBand lies outside its band; kDupA/kDupB share a
// value; band "c" collides with band "a" after one epoch shift.
#pragma once

// walb-lint: tag-stride
inline constexpr int kEpochTagStride = 1 << 4;

// walb-lint: tag-band(a, 0, 15)
inline constexpr int kInA = 3;
inline constexpr int kDupA = 5;
inline constexpr int kDupB = 5;
inline constexpr int kOutOfBand = 99;

// walb-lint: tag-band(b, 10, 20)
inline constexpr int kInB = 12;

// walb-lint: tag-band(c, -16, -14)
inline constexpr int kInC = -15;
