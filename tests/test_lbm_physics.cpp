/// Physics validation: analytic flow solutions (Couette, pressure-driven
/// Poiseuille), boundary-condition correctness, mass conservation, and the
/// TRT magic-parameter wall-placement property. These are the correctness
/// foundations beneath the paper's performance numbers.

#include <gtest/gtest.h>

#include "sim/SingleBlockSimulation.h"

namespace walb::sim {
namespace {

using lbm::SRT;
using lbm::TRT;

/// Couette flow: wall at bottom (no-slip), lid at top moving with U in x,
/// periodic in x and z. Steady profile is linear; with half-way bounce-back
/// walls this is resolved exactly.
class CouetteTest : public ::testing::TestWithParam<KernelTier> {};

TEST_P(CouetteTest, LinearProfile) {
    const cell_idx_t H = 12;
    SingleBlockSimulation::Config cfg;
    cfg.xSize = 6;
    cfg.ySize = H + 2; // one boundary row at bottom and top
    cfg.zSize = 4;
    cfg.periodicX = cfg.periodicZ = true;
    cfg.tier = GetParam();
    SingleBlockSimulation simulation(cfg);

    auto& ff = simulation.flags();
    const auto& masks = simulation.masks();
    ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == 0) ff.addFlag(x, y, z, masks.noSlip);
        else if (y == H + 1) ff.addFlag(x, y, z, masks.ubb);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize();

    const real_t U = 0.02;
    simulation.boundary().setWallVelocity({U, 0, 0});
    simulation.run(3000, TRT::fromOmegaAndMagic(1.1));

    // Walls sit half a cell outside the first/last fluid rows: the analytic
    // profile at fluid row j (1-based y) is U * (j - 0.5) / H.
    for (cell_idx_t j = 1; j <= H; ++j) {
        const Vec3 u = simulation.velocity(2, j, 2);
        const real_t expected = U * (real_c(j) - real_c(0.5)) / real_c(H);
        EXPECT_NEAR(u[0], expected, 1e-7) << "row " << j;
        EXPECT_NEAR(u[1], 0.0, 1e-9);
        EXPECT_NEAR(u[2], 0.0, 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, CouetteTest,
                         ::testing::Values(KernelTier::Generic, KernelTier::D3Q19,
                                           KernelTier::Simd),
                         [](const auto& tinfo) {
                             switch (tinfo.param) {
                                 case KernelTier::Generic: return "Generic";
                                 case KernelTier::D3Q19: return "D3Q19";
                                 default: return "Simd";
                             }
                         });

/// Pressure-driven Poiseuille flow between two plates: pressure
/// anti-bounce-back inlet/outlet in x, no-slip walls in y, periodic z.
/// Steady profile: u(y) = G/(2 nu) * y (H - y). The simple anti-bounce-back
/// BC imposes pressure with an O(1)-cell effective plane offset, so the
/// profile *shape* is validated against the measured mid-channel pressure
/// gradient (tight), and the magnitude against the imposed total drop
/// (loose).
TEST(Poiseuille, ParabolicProfileTRT) {
    const cell_idx_t L = 30, H = 14;
    SingleBlockSimulation::Config cfg;
    cfg.xSize = L + 2; // pressure boundary columns at x = 0 and x = L+1
    cfg.ySize = H + 2; // no-slip rows at y = 0 and y = H+1
    cfg.zSize = 3;
    cfg.periodicZ = true;
    SingleBlockSimulation simulation(cfg);

    auto& ff = simulation.flags();
    const auto& masks = simulation.masks();
    // Outlet uses a second, custom pressure flag so two densities coexist.
    const field::flag_t outletFlag = ff.registerFlag("pressureOut");
    const real_t rhoIn = 1.002, rhoOut = 1.0;
    ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == 0 || y == H + 1) ff.addFlag(x, y, z, masks.noSlip);
        else if (x == 0) ff.addFlag(x, y, z, masks.pressure);
        else if (x == L + 1) ff.addFlag(x, y, z, outletFlag);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize(1.0, {0, 0, 0});
    simulation.boundary().setPressureDensity(rhoIn);

    lbm::BoundaryFlags outletMasks{masks.fluid, 0, 0, outletFlag};
    lbm::BoundaryHandling<lbm::D3Q19> outlet(ff, outletMasks);
    outlet.setPressureDensity(rhoOut);

    const TRT op = TRT::fromOmegaAndMagic(1.0);
    const real_t nu = op.viscosity();
    for (int step = 0; step < 10000; ++step) {
        outlet.apply(simulation.pdfs());
        simulation.run(1, op);
    }

    // Effective pressure gradient from the linear mid-channel density drop.
    const cell_idx_t xa = L / 3, xb = 2 * L / 3;
    const real_t gradRho = (simulation.density(xa, H / 2, 1) -
                            simulation.density(xb, H / 2, 1)) / real_c(xb - xa);
    const real_t G = lbm::D3Q19::csSqr * gradRho;
    EXPECT_GT(gradRho, 0.0) << "density must decrease toward the outlet";

    // Profile shape against the measured gradient: tight tolerance.
    const real_t h = real_c(H);
    real_t maxRel = 0;
    for (cell_idx_t j = 1; j <= H; ++j) {
        const real_t y = real_c(j) - real_c(0.5); // wall plane at y = 0
        const real_t expected = G / (2 * nu) * y * (h - y);
        const Vec3 u = simulation.velocity(L / 2, j, 1);
        maxRel = std::max(maxRel, std::abs(u[0] - expected) / std::abs(expected));
        EXPECT_NEAR(u[1], 0.0, 2e-6);
        EXPECT_NEAR(u[2], 0.0, 2e-6);
    }
    EXPECT_LT(maxRel, 0.02) << "parabolic profile deviates more than 2%";

    // Magnitude against the imposed total drop: loose (BC plane offsets).
    const real_t gNominal = lbm::D3Q19::csSqr * (rhoIn - rhoOut) / real_c(L + 1);
    EXPECT_NEAR(G, gNominal, 0.15 * gNominal);

    // Steady-state mass conservation: identical volumetric flux through
    // every channel cross-section.
    auto flux = [&](cell_idx_t x) {
        real_t q = 0;
        for (cell_idx_t j = 1; j <= H; ++j)
            for (cell_idx_t k = 0; k < 3; ++k) q += simulation.velocity(x, j, k)[0];
        return q;
    };
    const real_t qMid = flux(L / 2);
    EXPECT_GT(qMid, 0.0);
    EXPECT_NEAR(flux(L / 4), qMid, 0.01 * qMid);
    EXPECT_NEAR(flux(3 * L / 4), qMid, 0.01 * qMid);
}

TEST(MassConservation, ClosedCavityConservesMassExactly) {
    SingleBlockSimulation::Config cfg;
    cfg.xSize = 12;
    cfg.ySize = 12;
    cfg.zSize = 12;
    SingleBlockSimulation simulation(cfg);
    auto& ff = simulation.flags();
    const auto& masks = simulation.masks();
    // Fully enclosed box of no-slip walls.
    ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (x == 0 || x == 11 || y == 0 || y == 11 || z == 0 || z == 11)
            ff.addFlag(x, y, z, masks.noSlip);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize(1.0, {0.01, 0.005, -0.01}); // initial swirl

    const real_t m0 = simulation.totalMass();
    simulation.run(500, TRT::fromOmegaAndMagic(1.5));
    EXPECT_NEAR(simulation.totalMass(), m0, 1e-9 * m0);
}

TEST(LidDrivenCavity, ConvergesToSteadySwirl) {
    const cell_idx_t N = 16;
    SingleBlockSimulation::Config cfg;
    cfg.xSize = N;
    cfg.ySize = N;
    cfg.zSize = N;
    SingleBlockSimulation simulation(cfg);
    auto& ff = simulation.flags();
    const auto& masks = simulation.masks();
    ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == N - 1) ff.addFlag(x, y, z, masks.ubb);
        else if (x == 0 || x == N - 1 || y == 0 || z == 0 || z == N - 1)
            ff.addFlag(x, y, z, masks.noSlip);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize();
    simulation.boundary().setWallVelocity({0.05, 0, 0});

    const TRT op = TRT::fromOmegaAndMagic(1.2);
    simulation.run(2000, op);
    const Vec3 uMid1 = simulation.velocity(N / 2, N / 2, N / 2);
    simulation.run(2000, op);
    const Vec3 uMid2 = simulation.velocity(N / 2, N / 2, N / 2);

    // The lid drags fluid: a nonzero recirculation develops...
    EXPECT_GT(uMid2.length(), 1e-5);
    // ...and converges to a steady state.
    EXPECT_NEAR(uMid1[0], uMid2[0], 5e-5);
    EXPECT_NEAR(uMid1[1], uMid2[1], 5e-5);
    // Velocities stay bounded by the lid speed (sanity/stability).
    EXPECT_LT(uMid2.length(), 0.05);
}

/// TRT with magic parameter 3/16 places bounce-back walls exactly at the
/// half-way plane for Poiseuille-type flows regardless of viscosity; SRT
/// has a tau-dependent wall offset. We verify the *relative* property: the
/// TRT profile error is substantially smaller than SRT's at large tau.
TEST(TrtMagicParameter, BeatsSrtAtLargeTau) {
    auto channelError = [](auto op) {
        const cell_idx_t H = 10;
        SingleBlockSimulation::Config cfg;
        cfg.xSize = 4;
        cfg.ySize = H + 2;
        cfg.zSize = 4;
        cfg.periodicX = cfg.periodicZ = true;
        SingleBlockSimulation simulation(cfg);
        auto& ff = simulation.flags();
        const auto& masks = simulation.masks();
        ff.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            if (y == 0) ff.addFlag(x, y, z, masks.noSlip);
            else if (y == H + 1) ff.addFlag(x, y, z, masks.ubb);
        });
        simulation.fillRemainingWithFluid();
        simulation.finalize();
        simulation.boundary().setWallVelocity({0.02, 0, 0});
        simulation.run(6000, op);
        real_t err = 0;
        for (cell_idx_t j = 1; j <= H; ++j) {
            const real_t expected = 0.02 * (real_c(j) - 0.5) / real_c(H);
            err = std::max(err, std::abs(simulation.velocity(1, j, 1)[0] - expected));
        }
        return err;
    };
    // tau = 3 (omega = 1/3): strongly over-relaxed regime.
    const real_t srtErr = channelError(SRT(1.0 / 3.0));
    const real_t trtErr = channelError(TRT::fromOmegaAndMagic(1.0 / 3.0));
    // Couette is linear, so both should be decent, but TRT must not be worse.
    EXPECT_LE(trtErr, srtErr + 1e-12);
}

} // namespace
} // namespace walb::sim
