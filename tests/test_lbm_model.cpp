/// Tests for lattice descriptors, equilibrium distributions and the SRT/TRT
/// collision operators: moment identities, conservation laws, and the
/// TRT->SRT reduction of paper Eq. (8).

#include <gtest/gtest.h>

#include "core/Random.h"
#include "lbm/Collision.h"
#include "lbm/Equilibrium.h"
#include "lbm/LatticeModel.h"

namespace walb::lbm {
namespace {

template <typename M>
class LatticeModelTest : public ::testing::Test {};

using Models = ::testing::Types<D3Q19, D3Q27, D2Q9>;
TYPED_TEST_SUITE(LatticeModelTest, Models);

TYPED_TEST(LatticeModelTest, WeightsSumToOne) {
    using M = TypeParam;
    real_t sum = 0;
    for (uint_t a = 0; a < M::Q; ++a) sum += M::w[a];
    EXPECT_NEAR(sum, 1.0, 1e-15);
}

TYPED_TEST(LatticeModelTest, VelocitySetIsSymmetric) {
    using M = TypeParam;
    for (uint_t a = 0; a < M::Q; ++a) {
        const uint_t b = M::inv[a];
        EXPECT_EQ(M::c[b][0], -M::c[a][0]);
        EXPECT_EQ(M::c[b][1], -M::c[a][1]);
        EXPECT_EQ(M::c[b][2], -M::c[a][2]);
        EXPECT_EQ(M::inv[b], a); // involution
        EXPECT_DOUBLE_EQ(M::w[a], M::w[b]);
    }
}

TYPED_TEST(LatticeModelTest, FirstWeightedMomentVanishes) {
    using M = TypeParam;
    for (int i = 0; i < 3; ++i) {
        real_t m = 0;
        for (uint_t a = 0; a < M::Q; ++a) m += M::w[a] * real_c(M::c[a][std::size_t(i)]);
        EXPECT_NEAR(m, 0.0, 1e-15);
    }
}

TYPED_TEST(LatticeModelTest, SecondWeightedMomentIsCsSqrIdentity) {
    using M = TypeParam;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j) {
            real_t m = 0;
            for (uint_t a = 0; a < M::Q; ++a)
                m += M::w[a] * real_c(M::c[a][i]) * real_c(M::c[a][j]);
            const real_t expected = (i == j && (M::D == 3 || i < 2)) ? M::csSqr : 0.0;
            EXPECT_NEAR(m, expected, 1e-15) << "i=" << i << " j=" << j;
        }
}

TYPED_TEST(LatticeModelTest, UniqueDirections) {
    using M = TypeParam;
    for (uint_t a = 0; a < M::Q; ++a)
        for (uint_t b = a + 1; b < M::Q; ++b)
            EXPECT_FALSE(M::c[a][0] == M::c[b][0] && M::c[a][1] == M::c[b][1] &&
                         M::c[a][2] == M::c[b][2]);
}

TEST(D3Q19Model, HasCenterPlusSixAxesPlusTwelveDiagonals) {
    int axis = 0, diag = 0, center = 0;
    for (uint_t a = 0; a < D3Q19::Q; ++a) {
        const int n = D3Q19::c[a][0] * D3Q19::c[a][0] + D3Q19::c[a][1] * D3Q19::c[a][1] +
                      D3Q19::c[a][2] * D3Q19::c[a][2];
        if (n == 0) ++center;
        else if (n == 1) ++axis;
        else if (n == 2) ++diag;
        else FAIL() << "D3Q19 direction with |c|^2 = " << n;
    }
    EXPECT_EQ(center, 1);
    EXPECT_EQ(axis, 6);
    EXPECT_EQ(diag, 12);
}

// ---- equilibrium -----------------------------------------------------------

TYPED_TEST(LatticeModelTest, EquilibriumMomentsMatchRhoAndU) {
    using M = TypeParam;
    const real_t rho = 1.05;
    const Vec3 u = (M::D == 2) ? Vec3(0.03, -0.02, 0.0) : Vec3(0.03, -0.02, 0.05);
    std::array<real_t, M::Q> feq{};
    setEquilibrium<M>(feq, rho, u);
    EXPECT_NEAR(density<M>(feq), rho, 1e-14);
    const Vec3 m = momentum<M>(feq);
    // Second-order equilibrium reproduces momentum exactly.
    EXPECT_NEAR(m[0], rho * u[0], 1e-14);
    EXPECT_NEAR(m[1], rho * u[1], 1e-14);
    EXPECT_NEAR(m[2], rho * u[2], 1e-14);
}

TYPED_TEST(LatticeModelTest, EquilibriumAtRestIsWeights) {
    using M = TypeParam;
    std::array<real_t, M::Q> feq{};
    setEquilibrium<M>(feq, 1.0, Vec3(0, 0, 0));
    for (uint_t a = 0; a < M::Q; ++a) EXPECT_DOUBLE_EQ(feq[a], M::w[a]);
}

TEST(Equilibrium, SymAsymDecompositionMatchesDefinition) {
    using M = D3Q19;
    const real_t rho = 0.97;
    const Vec3 u(0.04, 0.01, -0.03);
    for (uint_t a = 0; a < M::Q; ++a) {
        const uint_t b = M::inv[a];
        const real_t fa = equilibrium<M>(a, rho, u);
        const real_t fb = equilibrium<M>(b, rho, u);
        EXPECT_NEAR(equilibriumSym<M>(a, rho, u), 0.5 * (fa + fb), 1e-15);
        EXPECT_NEAR(equilibriumAsym<M>(a, rho, u), 0.5 * (fa - fb), 1e-15);
    }
}

TEST(Equilibrium, ViscosityTauRelations) {
    EXPECT_DOUBLE_EQ(viscosityFromTau(1.0), 1.0 / 6.0);
    EXPECT_DOUBLE_EQ(tauFromViscosity(1.0 / 6.0), 1.0);
    EXPECT_DOUBLE_EQ(omegaFromTau(2.0), 0.5);
}

// ---- collision operators ---------------------------------------------------

template <typename M>
std::array<real_t, M::Q> randomState(std::uint64_t seed) {
    Random rng(seed);
    std::array<real_t, M::Q> f{};
    setEquilibrium<M>(f, 1.0, Vec3(0.02, -0.01, 0.03));
    for (auto& v : f) v += real_c(0.01) * rng.uniform(-1.0, 1.0); // non-equilibrium part
    return f;
}

class CollisionConservation : public ::testing::TestWithParam<real_t> {};

TEST_P(CollisionConservation, SRTConservesMassAndMomentum) {
    using M = D3Q19;
    auto f = randomState<M>(11);
    const real_t rho0 = density<M>(f);
    const Vec3 m0 = momentum<M>(f);
    SRT(GetParam()).apply<M>(f);
    EXPECT_NEAR(density<M>(f), rho0, 1e-14);
    const Vec3 m1 = momentum<M>(f);
    EXPECT_NEAR(m1[0], m0[0], 1e-14);
    EXPECT_NEAR(m1[1], m0[1], 1e-14);
    EXPECT_NEAR(m1[2], m0[2], 1e-14);
}

TEST_P(CollisionConservation, TRTConservesMassAndMomentum) {
    using M = D3Q19;
    auto f = randomState<M>(13);
    const real_t rho0 = density<M>(f);
    const Vec3 m0 = momentum<M>(f);
    TRT::fromOmegaAndMagic(GetParam()).apply<M>(f);
    EXPECT_NEAR(density<M>(f), rho0, 1e-14);
    const Vec3 m1 = momentum<M>(f);
    EXPECT_NEAR(m1[0], m0[0], 1e-14);
    EXPECT_NEAR(m1[1], m0[1], 1e-14);
    EXPECT_NEAR(m1[2], m0[2], 1e-14);
}

INSTANTIATE_TEST_SUITE_P(OmegaSweep, CollisionConservation,
                         ::testing::Values(0.3, 0.6, 1.0, 1.5, 1.9));

TEST(Collision, EquilibriumIsFixedPoint) {
    using M = D3Q19;
    std::array<real_t, M::Q> f{};
    setEquilibrium<M>(f, 1.02, Vec3(0.03, 0.01, -0.02));
    auto fSRT = f;
    SRT(1.3).apply<M>(fSRT);
    auto fTRT = f;
    TRT::fromOmegaAndMagic(1.3).apply<M>(fTRT);
    for (uint_t a = 0; a < M::Q; ++a) {
        EXPECT_NEAR(fSRT[a], f[a], 1e-14);
        EXPECT_NEAR(fTRT[a], f[a], 1e-14);
    }
}

TEST(Collision, TRTWithEqualEigenvaluesReducesToSRT) {
    // Paper Eq. (8): lambda_e = lambda_o = -1/tau reduces TRT to SRT.
    using M = D3Q19;
    const real_t omega = 1.4;
    auto fSRT = randomState<M>(17);
    auto fTRT = fSRT;
    SRT(omega).apply<M>(fSRT);
    TRT::fromSRT(omega).apply<M>(fTRT);
    for (uint_t a = 0; a < M::Q; ++a) EXPECT_NEAR(fTRT[a], fSRT[a], 1e-14);
}

TEST(Collision, SRTRelaxesTowardEquilibrium) {
    using M = D3Q19;
    auto f = randomState<M>(23);
    const real_t rho = density<M>(f);
    const Vec3 u = momentum<M>(f) / rho;
    std::array<real_t, M::Q> feq{};
    setEquilibrium<M>(feq, rho, u);
    real_t distBefore = 0;
    for (uint_t a = 0; a < M::Q; ++a) distBefore += std::abs(f[a] - feq[a]);
    SRT(1.0).apply<M>(f); // omega = 1: jump straight to equilibrium
    for (uint_t a = 0; a < M::Q; ++a) EXPECT_NEAR(f[a], feq[a], 1e-13);
    EXPECT_GT(distBefore, 0.0);
}

TEST(Collision, TRTMagicParameterRoundTrip) {
    const auto op = TRT::fromOmegaAndMagic(1.6, TRT::magicDefault);
    EXPECT_NEAR(op.magic(), 3.0 / 16.0, 1e-14);
    EXPECT_NEAR(op.omegaE(), 1.6, 1e-14);
    const auto op2 = TRT::fromOmegaAndMagic(0.7, 0.25);
    EXPECT_NEAR(op2.magic(), 0.25, 1e-14);
}

} // namespace
} // namespace walb::lbm
