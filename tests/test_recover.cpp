/// Tests for the self-healing runtime (walb::recover): ReliableComm's
/// transient-fault healing (sequencing, NACK/resend, bounded escalation),
/// the ULFM-style failure agreement, the shrunken survivor communicator,
/// the in-memory buddy checkpoint — and the end-to-end acceptance drills:
/// a 4-rank run whose rank is killed mid-run heals in flight and reaches
/// the uninterrupted run's exact state digest, while a fault plan of
/// drops/delays below the escalation threshold completes with zero
/// recoveries and nonzero retries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "recover/RecoveryManager.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/Agreement.h"
#include "vmpi/FaultyComm.h"
#include "vmpi/ReliableComm.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ShrunkComm.h"
#include "vmpi/Tags.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using lbm::TRT;
using namespace std::chrono_literals;

std::vector<std::uint8_t> payload(std::uint8_t stamp) {
    return {stamp, std::uint8_t(stamp + 1), std::uint8_t(stamp + 2)};
}

// ---- ReliableComm: transient-fault healing ---------------------------------

TEST(ReliableCommTest, InOrderRoundTripCostsNoRetries) {
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& base) {
        vmpi::ReliableComm rel(base);
        if (base.rank() == 0) {
            for (std::uint8_t i = 0; i < 4; ++i) rel.send(1, 5, payload(i));
            EXPECT_EQ(rel.recv(1, 6), payload(99));
        } else {
            for (std::uint8_t i = 0; i < 4; ++i) EXPECT_EQ(rel.recv(0, 5), payload(i));
            rel.send(0, 6, payload(99));
        }
        EXPECT_EQ(rel.retries(), 0u);
        EXPECT_EQ(rel.escalations(), 0u);
        EXPECT_EQ(rel.duplicatesDropped(), 0u);
        EXPECT_EQ(rel.reordered(), 0u);
    });
}

TEST(ReliableCommTest, DroppedMessageIsHealedByNackAndResend) {
    // The wire eats rank 0's first tag-5 send; rank 1's recv must NACK it
    // back into existence instead of delivering out of order or giving up.
    vmpi::FaultPlan plan;
    {
        vmpi::FaultPlan::MessageFault f;
        f.action = vmpi::FaultPlan::Action::Drop;
        f.srcRank = 0;
        f.tag = 5;
        f.matchIndex = 0;
        plan.messageFaults.push_back(f);
    }
    std::atomic<std::uint64_t> retries{0}, resends{0}, dropped{0};
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& base) {
        vmpi::FaultyComm faulty(base, plan);
        vmpi::ReliableComm rel(faulty);
        rel.setRecvDeadline(200ms);
        if (base.rank() == 0) {
            for (std::uint8_t i = 0; i < 3; ++i) rel.send(1, 5, payload(i));
            // Blocking on the ack keeps rank 0 inside the reliability
            // protocol, where it services rank 1's NACK between deadline
            // windows — a sender that just returns can never resend.
            EXPECT_EQ(rel.recv(1, 6), payload(77));
            resends += rel.resends();
            dropped += faulty.counts().dropped;
        } else {
            for (std::uint8_t i = 0; i < 3; ++i) EXPECT_EQ(rel.recv(0, 5), payload(i));
            rel.send(0, 6, payload(77));
            retries += rel.retries();
        }
        EXPECT_EQ(rel.escalations(), 0u);
    });
    EXPECT_EQ(dropped.load(), 1u);
    EXPECT_GE(retries.load(), 1u);
    EXPECT_GE(resends.load(), 1u);
}

TEST(ReliableCommTest, DuplicatesAndReorderingAreHealedBySequencing) {
    // Rank 0's first send is duplicated and its second held back past the
    // third: arrival order 0,0,2,1,3. The sequence numbers must deliver
    // 0,1,2,3 exactly once each.
    vmpi::FaultPlan plan;
    {
        vmpi::FaultPlan::MessageFault dup;
        dup.action = vmpi::FaultPlan::Action::Duplicate;
        dup.srcRank = 0;
        dup.tag = 5;
        dup.matchIndex = 0;
        plan.messageFaults.push_back(dup);
        vmpi::FaultPlan::MessageFault delay;
        delay.action = vmpi::FaultPlan::Action::Delay;
        delay.srcRank = 0;
        delay.tag = 5;
        delay.matchIndex = 0; // first send reaching this rule is message 1
        delay.delayBySends = 1;
        plan.messageFaults.push_back(delay);
    }
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& base) {
        vmpi::FaultyComm faulty(base, plan);
        vmpi::ReliableComm rel(faulty);
        rel.setRecvDeadline(2000ms);
        if (base.rank() == 0) {
            for (std::uint8_t i = 0; i < 4; ++i) rel.send(1, 5, payload(i));
            EXPECT_EQ(faulty.counts().duplicated, 1u);
            EXPECT_EQ(faulty.counts().delayed, 1u);
        } else {
            for (std::uint8_t i = 0; i < 4; ++i) EXPECT_EQ(rel.recv(0, 5), payload(i));
            EXPECT_GE(rel.duplicatesDropped() + rel.reordered(), 2u);
            EXPECT_EQ(rel.retries(), 0u); // healed without a single NACK
        }
        base.barrier();
    });
}

TEST(ReliableCommTest, DeadPeerEscalatesAfterTheRetryBudget) {
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& base) {
        if (base.rank() != 0) {
            base.barrier();
            return; // rank 1 never sends: a dead peer, as far as rank 0 knows
        }
        vmpi::ReliableComm::RetryOptions opt;
        opt.maxRetries = 1;
        opt.backoffBase = 1ms;
        vmpi::ReliableComm rel(base, opt);
        rel.setRecvDeadline(50ms);
        std::atomic<int> observed{0};
        rel.setErrorObserver([&](const vmpi::CommError&) { ++observed; });
        try {
            rel.recv(1, 9);
            FAIL() << "expected CommError";
        } catch (const vmpi::CommError& e) {
            EXPECT_EQ(e.kind, vmpi::CommError::Kind::DeadlineExceeded);
            EXPECT_EQ(e.peer, 1);
        }
        EXPECT_EQ(rel.retries(), 1u);
        EXPECT_EQ(rel.escalations(), 1u);
        EXPECT_GT(rel.backoffSeconds(), 0.0);
        // The observer is gated: healed-in-progress attempts stay silent,
        // only the final escalated miss reaches the last-breath hooks.
        EXPECT_EQ(observed.load(), 1);
        base.barrier();
    });
}

// ---- failure agreement -----------------------------------------------------

TEST(AgreementTest, AllAliveWorldConvergesOnAnEmptyVerdict) {
    std::mutex mu;
    std::vector<std::vector<std::uint8_t>> verdicts;
    vmpi::ThreadCommWorld::launch(3, [&](vmpi::Comm& comm) {
        vmpi::AgreementOptions opt;
        opt.window = 250ms;
        const auto r = vmpi::agreeOnDeadRanks(comm, {}, {}, opt);
        EXPECT_EQ(r.attempts, 1);
        std::lock_guard<std::mutex> lk(mu);
        verdicts.push_back(r.dead);
    });
    ASSERT_EQ(verdicts.size(), 3u);
    for (const auto& v : verdicts) EXPECT_EQ(v, std::vector<std::uint8_t>({0, 0, 0}));
}

TEST(AgreementTest, SilentRankIsAgreedDeadByEverySurvivor) {
    std::mutex mu;
    std::vector<std::vector<std::uint8_t>> verdicts;
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        if (comm.rank() == 2) return; // dies without a word
        vmpi::AgreementOptions opt;
        opt.window = 250ms;
        const auto r = vmpi::agreeOnDeadRanks(comm, {}, {}, opt);
        std::lock_guard<std::mutex> lk(mu);
        verdicts.push_back(r.dead);
    });
    ASSERT_EQ(verdicts.size(), 3u);
    for (const auto& v : verdicts)
        EXPECT_EQ(v, std::vector<std::uint8_t>({0, 0, 1, 0}));
}

TEST(AgreementTest, SuspectThatParticipatesIsCleared) {
    // The escalated CommError names a peer, but the peer was merely slow:
    // participating in round 1 (the roll call) must clear the suspicion.
    vmpi::ThreadCommWorld::launch(3, [&](vmpi::Comm& comm) {
        std::vector<std::uint8_t> suspects(3, 0);
        suspects[1] = 1; // everyone suspects rank 1...
        vmpi::AgreementOptions opt;
        opt.window = 250ms;
        const auto r = vmpi::agreeOnDeadRanks(comm, {}, suspects, opt);
        // ...but rank 1 is right here, agreeing.
        EXPECT_EQ(r.dead, std::vector<std::uint8_t>({0, 0, 0}));
    });
}

TEST(AgreementTest, KnownDeadStayDeadWithoutBeingPolled) {
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        if (comm.rank() == 3) return; // dead since a previous epoch
        std::vector<std::uint8_t> knownDead(4, 0);
        knownDead[3] = 1;
        vmpi::AgreementOptions opt;
        opt.window = 250ms;
        const auto r = vmpi::agreeOnDeadRanks(comm, knownDead, {}, opt, /*epoch=*/1);
        EXPECT_EQ(r.dead, std::vector<std::uint8_t>({0, 0, 0, 1}));
        // Nobody waited a liveness window for the already-dead rank.
        EXPECT_EQ(r.attempts, 1);
    });
}

TEST(AgreementTest, SerialWorldReturnsImmediately) {
    vmpi::SerialComm comm;
    const auto r = vmpi::agreeOnDeadRanks(comm, {0}, {});
    EXPECT_EQ(r.dead, std::vector<std::uint8_t>({0}));
    EXPECT_EQ(r.rounds, 0);
}

// ---- shrunken communicator -------------------------------------------------

TEST(ShrunkCommTest, RankMapAndPointToPointWorkOnSurvivorsOnly) {
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& base) {
        if (base.rank() == 2) return; // the dead rank never joins the epoch
        vmpi::ShrunkComm sc(base, {0, 1, 3}, /*epoch=*/1);
        EXPECT_EQ(sc.size(), 3);
        EXPECT_EQ(sc.epoch(), 1);
        EXPECT_EQ(sc.newRankOf(0), 0);
        EXPECT_EQ(sc.newRankOf(1), 1);
        EXPECT_EQ(sc.newRankOf(2), -1); // dead
        EXPECT_EQ(sc.newRankOf(3), 2);
        EXPECT_EQ(sc.worldRank(sc.rank()), base.rank());

        // p2p in the dense numbering: 0 -> 2 (world 0 -> world 3).
        if (sc.rank() == 0) sc.send(2, 7, payload(42));
        if (sc.rank() == 2) {
            EXPECT_EQ(sc.recv(0, 7), payload(42));
        }
        sc.barrier(); // p2p fan-in/out, NOT the full-world ThreadComm barrier
    });
}

TEST(ShrunkCommTest, CollectivesAreRebuiltOverTheSurvivors) {
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& base) {
        if (base.rank() == 2) return;
        vmpi::ShrunkComm sc(base, {0, 1, 3}, 1);

        double v[1] = {double(base.rank())};
        sc.allreduce(std::span<double>(v, 1), vmpi::ReduceOp::Sum);
        EXPECT_DOUBLE_EQ(v[0], 0 + 1 + 3);

        std::uint64_t m[1] = {std::uint64_t(10 + base.rank())};
        sc.allreduce(std::span<std::uint64_t>(m, 1), vmpi::ReduceOp::Max);
        EXPECT_EQ(m[0], 13u);

        std::vector<std::uint8_t> bytes = payload(std::uint8_t(base.rank()));
        if (sc.rank() != 0) bytes.clear();
        sc.broadcast(bytes, 0);
        EXPECT_EQ(bytes, payload(0));

        const std::vector<std::uint8_t> mine{std::uint8_t(base.rank())};
        const auto all = sc.allgatherv(mine);
        ASSERT_EQ(all.size(), 3u);
        EXPECT_EQ(all[0], std::vector<std::uint8_t>{0});
        EXPECT_EQ(all[1], std::vector<std::uint8_t>{1});
        EXPECT_EQ(all[2], std::vector<std::uint8_t>{3});

        const auto gathered = sc.gatherv(mine, /*root=*/1);
        if (sc.rank() == 1) {
            ASSERT_EQ(gathered.size(), 3u);
            EXPECT_EQ(gathered[2], std::vector<std::uint8_t>{3});
        } else {
            EXPECT_TRUE(gathered.empty());
        }
    });
}

// ---- fixtures shared by the simulation-level tests -------------------------

/// Lid-driven cavity, one 8^3 block per rank: small enough for a subsecond
/// step loop, live enough (moving lid) that digest equality is a real
/// statement.
bf::SetupBlockForest makeCavitySetup(std::uint32_t ranks) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8.0 * ranks, 8, 8);
    cfg.rootBlocksX = ranks;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    return setup;
}

sim::DistributedSimulation::FlagInitializer cavityFlags(std::uint32_t ranks) {
    const cell_idx_t NX = 8 * cell_idx_c(ranks);
    return [NX](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                const bf::BlockForest::Block&, const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > real_c(NX) || p[1] > 8 ||
                p[2] > 8)
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.z == 7) flags.addFlag(x, y, z, masks.ubb);
            else if (g.x == 0 || g.x == NX - 1 || g.y == 0 || g.y == 7 || g.z == 0)
                flags.addFlag(x, y, z, masks.noSlip);
            else flags.addFlag(x, y, z, masks.fluid);
        });
    };
}

// ---- buddy checkpoint ------------------------------------------------------

TEST(BuddyCheckpointTest, RestoreOwnBlocksRewindsBitExactly) {
    auto setup = makeCavitySetup(2);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, cavityFlags(2));
        simulation.setWallVelocity({0.05, 0, 0});
        simulation.run(4, TRT::fromOmegaAndMagic(1.5));
        recover::BuddyCheckpoint buddy;
        buddy.refresh(simulation, comm, simulation.currentStep());
        ASSERT_TRUE(buddy.valid());
        EXPECT_EQ(buddy.step(), 4u);
        EXPECT_EQ(buddy.ringSize(), 2);
        EXPECT_EQ(buddy.partnerRingRank(), (comm.rank() + 1) % 2);
        EXPECT_GT(buddy.selfBytes(), 0u);
        EXPECT_GT(buddy.partnerBytes(), 0u);
        const std::uint64_t digestAtRefresh = simulation.stateDigest();

        simulation.run(4, TRT::fromOmegaAndMagic(1.5));
        EXPECT_NE(simulation.stateDigest(), digestAtRefresh);

        std::string err;
        ASSERT_TRUE(buddy.restoreOwnBlocks(simulation, &err)) << err;
        simulation.setCurrentStep(buddy.step());
        EXPECT_EQ(simulation.stateDigest(), digestAtRefresh);
    });
}

TEST(BuddyCheckpointTest, PartnerBlocksParseIntoShippableRecords) {
    auto setup = makeCavitySetup(2);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, cavityFlags(2));
        simulation.setWallVelocity({0.05, 0, 0});
        simulation.run(2, TRT::fromOmegaAndMagic(1.5));
        recover::BuddyCheckpoint buddy;
        buddy.refresh(simulation, comm, simulation.currentStep());

        std::vector<recover::BuddyCheckpoint::BlockRecord> records;
        std::string err;
        ASSERT_TRUE(buddy.partnerBlocks(records, &err)) << err;
        // One 8^3 block per rank in this fixture: the partner copy must
        // hold exactly the ring predecessor's single block.
        ASSERT_EQ(records.size(), 1u);
        EXPECT_FALSE(records[0].bytes.empty());
        buddy.invalidate();
        EXPECT_FALSE(buddy.valid());
        EXPECT_EQ(buddy.selfBytes(), 0u);
    });
}

// ---- option parsing --------------------------------------------------------

TEST(RecoveryOptionsTest, FromArgsParsesTheWholeSurface) {
    const char* argv[] = {"prog",
                          "--recover",
                          "--buddy-every", "5",
                          "--agree-timeout-ms=300",
                          "--max-recoveries", "7",
                          "--recover-disk-fallback", "/tmp/last.wckp"};
    const auto opt = recover::RecoveryOptions::fromArgs(
        int(std::size(argv)), const_cast<char**>(argv));
    EXPECT_TRUE(opt.enabled);
    EXPECT_EQ(opt.buddyEvery, 5u);
    EXPECT_EQ(opt.agreeTimeout, 300ms);
    EXPECT_EQ(opt.maxRecoveries, 7);
    EXPECT_EQ(opt.diskFallback, "/tmp/last.wckp");

    const char* off[] = {"prog"};
    EXPECT_FALSE(recover::RecoveryOptions::fromArgs(1, const_cast<char**>(off)).enabled);
}

// ---- end-to-end: kill-and-heal and transient-only drills -------------------

std::uint64_t uninterruptedDigest(const bf::SetupBlockForest& setup, int ranks,
                                  uint_t steps) {
    std::atomic<std::uint64_t> digest{0};
    vmpi::ThreadCommWorld::launch(ranks, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup,
                                              cavityFlags(std::uint32_t(ranks)));
        simulation.setWallVelocity({0.05, 0, 0});
        simulation.run(steps, TRT::fromOmegaAndMagic(1.5));
        const std::uint64_t d = simulation.stateDigest(); // collective: all call
        if (comm.rank() == 0) digest = d;
    });
    return digest.load();
}

TEST(RecoverEndToEnd, KilledRankIsHealedToTheUninterruptedDigest) {
    const int ranks = 4;
    const uint_t steps = 12;
    auto setup = makeCavitySetup(std::uint32_t(ranks));
    const std::uint64_t reference = uninterruptedDigest(setup, ranks, steps);
    ASSERT_NE(reference, 0u);

    vmpi::FaultPlan plan;
    plan.killRank = 1;
    plan.killAtStep = 6;
    recover::RecoveryOptions opt;
    opt.enabled = true;
    opt.buddyEvery = 4;

    std::atomic<std::uint64_t> healed{0};
    std::atomic<int> recoveries{-1}, lostBlocks{0}, survivors{0};
    std::atomic<std::uint64_t> rewindStep{0};
    vmpi::ThreadCommWorld::launch(ranks, [&](vmpi::Comm& base) {
        vmpi::FaultyComm faulty(base, plan);
        vmpi::ReliableComm reliable(faulty);
        reliable.setRecvDeadline(250ms);
        sim::DistributedSimulation simulation(reliable, setup,
                                              cavityFlags(std::uint32_t(ranks)));
        simulation.setWallVelocity({0.05, 0, 0});
        // Keep the failure-moment .wfr dumps out of the working directory.
        simulation.setFlightRecorderDumpPrefix(testing::TempDir() + "/walb_recover_kill");
        simulation.setPreStepCallback(
            [&](std::uint64_t step) { faulty.beginStep(step); });
        recover::RecoveryManager manager(simulation, opt);
        try {
            manager.runWithRecovery(steps, TRT::fromOmegaAndMagic(1.5));
        } catch (const vmpi::CommError& e) {
            if (recover::RecoveryManager::isSelfDeath(e, base.rank())) return;
            throw;
        }
        ++survivors;
        const std::uint64_t digest = simulation.stateDigest();
        EXPECT_EQ(simulation.currentStep(), steps);
        if (manager.activeComm().rank() == 0) {
            healed = digest;
            recoveries = manager.recoveries();
            ASSERT_EQ(manager.history().size(), 1u);
            lostBlocks = manager.history()[0].lostBlocks;
            rewindStep = manager.history()[0].rewindStep;
        }
    });

    EXPECT_EQ(survivors.load(), ranks - 1);
    EXPECT_EQ(recoveries.load(), 1);
    EXPECT_GE(lostBlocks.load(), 1);
    EXPECT_EQ(rewindStep.load(), 4u); // last buddy refresh before the kill
    EXPECT_EQ(healed.load(), reference) << "healed run diverged from reference";
}

TEST(RecoverEndToEnd, TransientFaultsHealWithZeroRecoveriesAndNonzeroRetries) {
    // The ISSUE's required drill: a plan of drops/delays/duplicates on the
    // ghost-exchange tag, all below ReliableComm's escalation threshold.
    // The run must complete with zero recoveries, nonzero recover.retries,
    // and the uninterrupted digest.
    const int ranks = 4;
    const uint_t steps = 12;
    auto setup = makeCavitySetup(std::uint32_t(ranks));
    const std::uint64_t reference = uninterruptedDigest(setup, ranks, steps);

    constexpr int kGhostTag = vmpi::tags::kGhostExchange;
    vmpi::FaultPlan plan;
    auto add = [&](vmpi::FaultPlan::Action action, int src, std::uint64_t matchIndex,
                   std::uint64_t delayBy = 1) {
        vmpi::FaultPlan::MessageFault f;
        f.action = action;
        f.srcRank = src;
        f.tag = kGhostTag;
        f.matchIndex = matchIndex;
        f.delayBySends = delayBy;
        plan.messageFaults.push_back(f);
    };
    add(vmpi::FaultPlan::Action::Drop, 1, 5);
    add(vmpi::FaultPlan::Action::Drop, 3, 12);
    add(vmpi::FaultPlan::Action::Delay, 2, 9, 2);
    add(vmpi::FaultPlan::Action::Duplicate, 0, 3);

    recover::RecoveryOptions opt;
    opt.enabled = true;
    opt.buddyEvery = 4;

    std::atomic<std::uint64_t> digest{0}, retries{0}, injected{0};
    std::atomic<int> recoveries{-1};
    std::atomic<double> publishedRetries{-1.0};
    vmpi::ThreadCommWorld::launch(ranks, [&](vmpi::Comm& base) {
        vmpi::FaultyComm faulty(base, plan);
        vmpi::ReliableComm reliable(faulty);
        reliable.setRecvDeadline(250ms);
        sim::DistributedSimulation simulation(reliable, setup,
                                              cavityFlags(std::uint32_t(ranks)));
        simulation.setWallVelocity({0.05, 0, 0});
        simulation.setPreStepCallback(
            [&](std::uint64_t step) { faulty.beginStep(step); });
        recover::RecoveryManager manager(simulation, opt);
        manager.runWithRecovery(steps, TRT::fromOmegaAndMagic(1.5));
        const std::uint64_t d = simulation.stateDigest();
        retries += vmpi::allreduceSum(base, reliable.retries());
        injected += vmpi::allreduceSum(base, faulty.faultsInjected());
        if (base.rank() == 0) {
            digest = d;
            recoveries = manager.recoveries();
            // publishMetrics ran inside runWithRecovery: this rank's own
            // retry count must surface under the recover.* gauge family.
            const obs::Gauge* g = simulation.metrics().findGauge("recover.retries");
            ASSERT_NE(g, nullptr);
            publishedRetries = g->value();
            EXPECT_DOUBLE_EQ(publishedRetries.load(), double(reliable.retries()));
        }
    });

    EXPECT_EQ(recoveries.load(), 0) << "a transient fault escalated into recovery";
    EXPECT_GE(injected.load(), 4u);
    EXPECT_GE(retries.load(), 1u) << "faults were planned but never retried";
    EXPECT_GE(publishedRetries.load(), 0.0);
    EXPECT_EQ(digest.load(), reference);
}

} // namespace
} // namespace walb
