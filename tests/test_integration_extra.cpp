/// Additional cross-module integration tests: distributed runs on a
/// *refined* block forest (octree-level BlockIDs through the whole comm
/// stack), watertightness of the extracted coronary surface, large
/// collective payloads, and forest construction combining refinement with
/// geometry exclusion.

#include <gtest/gtest.h>

#include "geometry/CoronaryTree.h"
#include "sim/DistributedSimulation.h"
#include "sim/SingleBlockSimulation.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using lbm::TRT;

TEST(RefinedForest, DistributedCavityMatchesSingleBlock) {
    // One root block refined one level -> 8 level-1 blocks of 8^3 cells:
    // the ghost exchange then runs on octree-path BlockIDs (nonzero level),
    // exercising id serialization through PdfCommScheme.
    constexpr cell_idx_t N = 16;
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, N, N, N);
    cfg.rootBlocksX = cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.refinementLevel = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = N / 2;
    auto setup = bf::SetupBlockForest::create(cfg);
    ASSERT_EQ(setup.numBlocks(), 8u);
    for (const auto& b : setup.blocks()) EXPECT_EQ(b.id.level(), 1u);
    setup.balanceMorton(4);

    auto flagInit = [](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                       const bf::BlockForest::Block&, const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > N || p[1] > N || p[2] > N)
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.y == N - 1) flags.addFlag(x, y, z, masks.ubb);
            else if (g.x == 0 || g.x == N - 1 || g.y == 0 || g.z == 0 || g.z == N - 1)
                flags.addFlag(x, y, z, masks.noSlip);
            else flags.addFlag(x, y, z, masks.fluid);
        });
    };

    // Single-block reference.
    sim::SingleBlockSimulation::Config scfg;
    scfg.xSize = scfg.ySize = scfg.zSize = N;
    sim::SingleBlockSimulation reference(scfg);
    reference.flags().forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == N - 1) reference.flags().addFlag(x, y, z, reference.masks().ubb);
        else if (x == 0 || x == N - 1 || y == 0 || z == 0 || z == N - 1)
            reference.flags().addFlag(x, y, z, reference.masks().noSlip);
    });
    reference.fillRemainingWithFluid();
    reference.finalize();
    reference.boundary().setWallVelocity({0.04, 0, 0});
    reference.run(25, TRT::fromOmegaAndMagic(1.4));
    const Vec3 expected = reference.velocity(N / 2, N / 2, N / 2);

    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.run(25, TRT::fromOmegaAndMagic(1.4));
        const Vec3 u = simulation.gatherCellVelocity({N / 2, N / 2, N / 2});
        EXPECT_NEAR(u[0], expected[0], 1e-13);
        EXPECT_NEAR(u[1], expected[1], 1e-13);
        EXPECT_NEAR(u[2], expected[2], 1e-13);
    });
}

TEST(RefinedForest, ExclusionComposesWithRefinement) {
    geometry::SphereDistance sphere({4, 4, 4}, 2.5);
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8, 8, 8);
    cfg.rootBlocksX = cfg.rootBlocksY = cfg.rootBlocksZ = 2;
    cfg.refinementLevel = 1; // effective 4x4x4 grid of level-1 blocks
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    const auto forest = bf::SetupBlockForest::create(cfg, &sphere);
    EXPECT_LT(forest.numBlocks(), 64u);
    EXPECT_GT(forest.numBlocks(), 8u);
    for (const auto& b : forest.blocks()) {
        EXPECT_EQ(b.id.level(), 1u);
        // Every kept block intersects the sphere volume.
        EXPECT_LT(sphere.signedDistance(b.aabb.center()),
                  b.aabb.circumsphereRadius() + 1e-12);
    }
}

TEST(CoronarySurface, ExtractedMeshIsWatertight) {
    geometry::CoronaryTreeParams params;
    params.seed = 5;
    params.bounds = AABB(0, 0, 0, 1, 1, 1);
    params.rootRadius = 0.06;
    params.minRadius = 0.02;
    params.maxDepth = 5;
    const auto tree = geometry::CoronaryTree::generate(params);
    const auto mesh = tree.surfaceMesh(72);
    ASSERT_GT(mesh.numTriangles(), 500u);

    std::map<std::pair<std::uint32_t, std::uint32_t>, int> edgeUse;
    for (std::size_t t = 0; t < mesh.numTriangles(); ++t) {
        const auto& tri = mesh.triangle(t);
        for (unsigned e = 0; e < 3; ++e) {
            auto a = tri[e], b = tri[(e + 1) % 3];
            if (a > b) std::swap(a, b);
            ++edgeUse[{a, b}];
        }
    }
    std::size_t open = 0;
    for (const auto& [edge, count] : edgeUse)
        if (count != 2) ++open;
    EXPECT_EQ(open, 0u) << "extracted coronary surface has " << open << " open edges";
}

TEST(Vmpi, LargeBroadcastAndGather) {
    // Megabyte-scale payloads through the collectives (the mesh broadcast
    // of §2.3 ships whole surface meshes this way).
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        std::vector<double> payload;
        if (comm.rank() == 2) {
            payload.resize(200000);
            for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = double(i) * 0.5;
        }
        vmpi::broadcastObject(comm, payload, 2);
        ASSERT_EQ(payload.size(), 200000u);
        EXPECT_DOUBLE_EQ(payload[123456], 123456 * 0.5);

        // Gather a rank-dependent chunk back onto rank 0.
        SendBuffer sb;
        sb << std::vector<std::uint32_t>(std::size_t(10000 * (comm.rank() + 1)),
                                         std::uint32_t(comm.rank()));
        const auto all = comm.gatherv(std::span<const std::uint8_t>(sb.data(), sb.size()), 0);
        if (comm.rank() == 0) {
            ASSERT_EQ(all.size(), 4u);
            for (int r = 0; r < 4; ++r) {
                RecvBuffer rb(all[std::size_t(r)]);
                std::vector<std::uint32_t> v;
                rb >> v;
                EXPECT_EQ(v.size(), std::size_t(10000 * (r + 1)));
                EXPECT_EQ(v.back(), std::uint32_t(r));
            }
        }
    });
}

TEST(BlockIDHash, FewCollisionsOnDenseIdSets) {
    bf::BlockIDHash hash;
    std::set<std::size_t> hashes;
    std::size_t total = 0;
    for (std::uint32_t root = 0; root < 64; ++root) {
        bf::BlockID id = bf::BlockID::root(root);
        hashes.insert(hash(id));
        ++total;
        for (unsigned c = 0; c < 8; ++c) {
            hashes.insert(hash(id.child(c)));
            ++total;
            for (unsigned c2 = 0; c2 < 8; ++c2) {
                hashes.insert(hash(id.child(c).child(c2)));
                ++total;
            }
        }
    }
    // Not a cryptographic requirement — just "few enough collisions that
    // hash maps stay O(1)".
    EXPECT_GT(hashes.size(), total * 95 / 100);
}

} // namespace
} // namespace walb
