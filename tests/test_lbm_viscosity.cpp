/// Chapman-Enskog validation: the kinematic viscosity realized by the
/// kernels must equal nu = cs^2 (tau - 1/2) for both collision operators
/// over a sweep of relaxation times. Measured via the decay of a periodic
/// shear wave, u_x(y, t) = A exp(-nu k^2 t) sin(k y) — a sharp end-to-end
/// property: collision, streaming and periodicity all have to be right for
/// the decay rate to come out correctly.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/SingleBlockSimulation.h"

namespace walb::sim {
namespace {

constexpr real_t kPi = real_c(3.14159265358979323846);

/// Runs a periodic shear wave and returns the measured viscosity. The run
/// length targets one e-folding of the amplitude: much longer and the wave
/// decays into round-off; much shorter and the ratio is noise-limited.
template <typename Op>
real_t measureViscosity(const Op& op, real_t nuNominal) {
    // The decay rate carries an O(k^2) correction that grows with tau; at
    // high viscosity a longer wavelength keeps it below the tolerance.
    const cell_idx_t N = nuNominal > real_c(0.2) ? 48 : 24;
    SingleBlockSimulation::Config cfg;
    cfg.xSize = 6;
    cfg.ySize = N;
    cfg.zSize = 6;
    cfg.periodicX = cfg.periodicY = cfg.periodicZ = true;
    SingleBlockSimulation simulation(cfg);
    simulation.fillRemainingWithFluid();
    simulation.finalize();

    // Overwrite the uniform initialization with the shear wave.
    const real_t A = 0.005;
    const real_t k = 2 * kPi / real_c(N);
    auto& pdfs = simulation.pdfs();
    pdfs.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Vec3 u(A * std::sin(k * real_c(y)), 0, 0);
        for (uint_t a = 0; a < lbm::D3Q19::Q; ++a)
            pdfs.get(x, y, z, cell_idx_c(a)) = lbm::equilibrium<lbm::D3Q19>(a, 1.0, u);
    });

    auto amplitude = [&] {
        // Project u_x onto sin(k y) over one column.
        real_t num = 0, den = 0;
        for (cell_idx_t y = 0; y < N; ++y) {
            const real_t s = std::sin(k * real_c(y));
            num += simulation.velocity(2, y, 2)[0] * s;
            den += s * s;
        }
        return num / den;
    };

    const uint_t steps = uint_t(std::clamp(1.0 / double(nuNominal * k * k), 60.0, 2500.0));
    const real_t a0 = amplitude();
    simulation.run(steps, op);
    const real_t a1 = amplitude();
    return -std::log(a1 / a0) / (k * k * real_c(steps));
}

class ViscositySweep : public ::testing::TestWithParam<real_t> {};

TEST_P(ViscositySweep, SrtMatchesChapmanEnskog) {
    const real_t omega = GetParam();
    const lbm::SRT op(omega);
    const real_t measured = measureViscosity(op, op.viscosity());
    EXPECT_NEAR(measured, op.viscosity(), 0.03 * op.viscosity() + 5e-5)
        << "omega=" << omega;
}

TEST_P(ViscositySweep, TrtMatchesChapmanEnskog) {
    const real_t omega = GetParam();
    const auto op = lbm::TRT::fromOmegaAndMagic(omega);
    const real_t measured = measureViscosity(op, op.viscosity());
    EXPECT_NEAR(measured, op.viscosity(), 0.03 * op.viscosity() + 5e-5)
        << "omega=" << omega;
}

INSTANTIATE_TEST_SUITE_P(OmegaSweep, ViscositySweep,
                         ::testing::Values(0.6, 0.9, 1.2, 1.5, 1.8),
                         [](const auto& tinfo) {
                             return "omega" + std::to_string(int(tinfo.param * 100));
                         });

TEST(ShearWave, DecayIsExponential) {
    // Amplitude ratios over equal intervals must be constant (pure
    // exponential decay, no dispersion at this amplitude).
    const cell_idx_t N = 24;
    SingleBlockSimulation::Config cfg;
    cfg.xSize = 6;
    cfg.ySize = N;
    cfg.zSize = 6;
    cfg.periodicX = cfg.periodicY = cfg.periodicZ = true;
    SingleBlockSimulation simulation(cfg);
    simulation.fillRemainingWithFluid();
    simulation.finalize();
    const real_t k = 2 * kPi / real_c(N);
    auto& pdfs = simulation.pdfs();
    pdfs.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Vec3 u(0.005 * std::sin(k * real_c(y)), 0, 0);
        for (uint_t a = 0; a < lbm::D3Q19::Q; ++a)
            pdfs.get(x, y, z, cell_idx_c(a)) = lbm::equilibrium<lbm::D3Q19>(a, 1.0, u);
    });
    auto peak = [&] { return simulation.velocity(2, N / 4, 2)[0]; };
    const auto op = lbm::TRT::fromOmegaAndMagic(1.4);
    const real_t p0 = peak();
    simulation.run(150, op);
    const real_t p1 = peak();
    simulation.run(150, op);
    const real_t p2 = peak();
    EXPECT_NEAR(p1 / p0, p2 / p1, 0.01 * p1 / p0);
    EXPECT_LT(p2, p1);
    EXPECT_LT(p1, p0);
}

} // namespace
} // namespace walb::sim
