/// Tests for the observability subsystem (`walb::obs`): metrics registry
/// (counters / gauges / histograms) and its cross-rank reduction, the
/// TimingPool reduction with the Figure-6 report, the phase TraceRecorder
/// with Chrome trace_event export, the minimal JSON writer/parser, and the
/// end-to-end wiring through a 4-rank ThreadComm DistributedSimulation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/TimingReduction.h"
#include "obs/Trace.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb::obs {
namespace {

// ---- JSON writer / parser --------------------------------------------------

TEST(Json, WriterProducesParseableDocument) {
    std::ostringstream os;
    json::Writer w(os);
    w.beginObject();
    w.kv("name", "walb").kv("pi", 3.25).kv("count", std::uint64_t(42)).kv("neg",
                                                                          std::int64_t(-7));
    w.kv("flag", true);
    w.key("list").beginArray().value(1).value(2).value(3).endArray();
    w.key("nested").beginObject().kv("inner", "x").endObject();
    w.endObject();
    EXPECT_EQ(w.depth(), 0u);

    const json::Value root = json::parseOrAbort(os.str());
    EXPECT_EQ(root.at("name").str(), "walb");
    EXPECT_DOUBLE_EQ(root.at("pi").number(), 3.25);
    EXPECT_DOUBLE_EQ(root.at("count").number(), 42.0);
    EXPECT_DOUBLE_EQ(root.at("neg").number(), -7.0);
    EXPECT_TRUE(root.at("flag").boolean());
    ASSERT_EQ(root.at("list").array().size(), 3u);
    EXPECT_DOUBLE_EQ(root.at("list").array()[2].number(), 3.0);
    EXPECT_EQ(root.at("nested").at("inner").str(), "x");
}

TEST(Json, EscapingRoundTrips) {
    std::ostringstream os;
    json::Writer w(os);
    const std::string nasty = "quote\" backslash\\ newline\n tab\t";
    w.beginObject().kv("s", nasty).endObject();
    const json::Value root = json::parseOrAbort(os.str());
    EXPECT_EQ(root.at("s").str(), nasty);
}

TEST(Json, ParserRejectsMalformedInput) {
    bool ok = true;
    std::string error;
    json::parse("{\"a\": ", ok, error);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(error.empty());
    json::parse("{\"a\": 1} trailing", ok, error);
    EXPECT_FALSE(ok);
    json::parse("[1, 2,, 3]", ok, error);
    EXPECT_FALSE(ok);
}

TEST(Json, ParserAcceptsScalarsAndNesting) {
    bool ok = false;
    std::string error;
    const json::Value v =
        json::parse("[true, false, null, -1.5e2, \"s\", {\"k\": []}]", ok, error);
    ASSERT_TRUE(ok) << error;
    ASSERT_EQ(v.array().size(), 6u);
    EXPECT_TRUE(v.array()[0].boolean());
    EXPECT_FALSE(v.array()[1].boolean());
    EXPECT_TRUE(v.array()[2].isNull());
    EXPECT_DOUBLE_EQ(v.array()[3].number(), -150.0);
    EXPECT_EQ(v.array()[4].str(), "s");
    EXPECT_TRUE(v.array()[5].at("k").array().empty());
}

// ---- metrics primitives ----------------------------------------------------

TEST(Counter, IncrementAndSaturatingOverflow) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    // Overflow saturates instead of wrapping: reductions never see a sum
    // jump backwards.
    c.inc(Counter::kMax - 10);
    EXPECT_EQ(c.value(), Counter::kMax);
    c.inc(123);
    EXPECT_EQ(c.value(), Counter::kMax);
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
    Histogram h({1.0, 2.0, 5.0});
    // Bucket i counts x with edge[i-1] < x <= edge[i].
    h.record(0.5);  // bucket 0
    h.record(1.0);  // bucket 0 (upper-inclusive)
    h.record(1.001); // bucket 1
    h.record(2.0);  // bucket 1
    h.record(5.0);  // bucket 2
    h.record(5.001); // overflow
    h.record(100.0); // overflow
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 2u);
    EXPECT_EQ(h.counts()[1], 2u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001 + 100.0, 1e-12);
}

TEST(Histogram, MergeIsBucketWise) {
    Histogram a({1.0, 2.0}), b({1.0, 2.0});
    a.record(0.5);
    a.record(1.5);
    b.record(1.5);
    b.record(9.0);
    a.merge(b);
    EXPECT_EQ(a.counts()[0], 1u);
    EXPECT_EQ(a.counts()[1], 2u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.min(), 0.5);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Histogram, BucketsAreAllocatedEagerly) {
    // counts() must be well-formed before the first record(): consumers
    // (JSON export, merge) read it unconditionally.
    Histogram fresh({1.0, 2.0});
    ASSERT_EQ(fresh.counts().size(), 3u);
    for (std::uint64_t c : fresh.counts()) EXPECT_EQ(c, 0u);
    EXPECT_EQ(fresh.overflow(), 0u);
    EXPECT_DOUBLE_EQ(fresh.quantile(0.5), 0.0);

    Histogram overflowOnly; // default: single overflow bucket
    ASSERT_EQ(overflowOnly.counts().size(), 1u);
    EXPECT_EQ(overflowOnly.counts()[0], 0u);
    Histogram merged({1.0, 2.0});
    merged.merge(fresh); // merging two untouched histograms must not abort
    EXPECT_EQ(merged.count(), 0u);
}

TEST(Histogram, QuantileInterpolatesWithinTheBucket) {
    Histogram h({1.0, 2.0, 4.0});
    for (int i = 0; i < 10; ++i) h.record(0.5 + 0.05 * i); // bucket 0: [0.5, 0.95]
    // Exact at the extremes.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.95);
    // All mass in one bucket: linear between observed min and the edge/max.
    // target = 0.5 * 10 = 5 of 10 samples -> halfway through [0.5, 0.95].
    EXPECT_NEAR(h.quantile(0.5), 0.5 + 0.45 * 0.5, 1e-12);
    h.record(3.0); // one sample in bucket 2 (2, 4]
    // q=1 stays exact at the new max even though it sits mid-bucket.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
    // The p99 estimate lands in the last occupied bucket, clamped by max.
    EXPECT_GT(h.quantile(0.99), 2.0);
    EXPECT_LE(h.quantile(0.99), 3.0);
}

TEST(Histogram, JsonCarriesTheQuantileSummary) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("step_seconds", {1e-3, 1e-2, 1e-1});
    for (int i = 1; i <= 100; ++i) h.record(1e-4 * i); // 0.1 ms .. 10 ms
    std::ostringstream os;
    reg.writeJson(os);
    const json::Value root = json::parseOrAbort(os.str());
    const json::Value& jh = root.at("histograms").at("step_seconds");
    EXPECT_NEAR(jh.at("p50").number(), h.quantile(0.50), 1e-12);
    EXPECT_NEAR(jh.at("p95").number(), h.quantile(0.95), 1e-12);
    EXPECT_NEAR(jh.at("p99").number(), h.quantile(0.99), 1e-12);
    // Sanity: the estimates are ordered and inside the observed range.
    EXPECT_LE(jh.at("p50").number(), jh.at("p95").number());
    EXPECT_LE(jh.at("p95").number(), jh.at("p99").number());
    EXPECT_GE(jh.at("p50").number(), 1e-4);
    EXPECT_LE(jh.at("p99").number(), 1e-2);
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
    MetricsRegistry reg;
    Counter& c = reg.counter("steps");
    Gauge& g = reg.gauge("mlups");
    reg.counter("other").inc(5); // map growth must not invalidate c/g
    c.inc(3);
    g.set(1.5);
    EXPECT_EQ(reg.findCounter("steps")->value(), 3u);
    EXPECT_DOUBLE_EQ(reg.findGauge("mlups")->value(), 1.5);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
}

TEST(MetricsRegistry, LocalJsonSnapshotParses) {
    MetricsRegistry reg;
    reg.counter("a").inc(7);
    reg.gauge("b").set(2.5);
    reg.histogram("h", {1.0, 10.0}).record(3.0);
    std::ostringstream os;
    reg.writeJson(os);
    const json::Value root = json::parseOrAbort(os.str());
    EXPECT_DOUBLE_EQ(root.at("counters").at("a").number(), 7.0);
    EXPECT_DOUBLE_EQ(root.at("gauges").at("b").number(), 2.5);
    EXPECT_DOUBLE_EQ(root.at("histograms").at("h").at("count").number(), 1.0);
}

// ---- cross-rank reduction --------------------------------------------------

TEST(MetricsRegistry, ReduceAcrossFourRanks) {
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        const auto r = std::uint64_t(comm.rank());
        MetricsRegistry reg;
        reg.counter("steps").inc(10 * (r + 1)); // 10,20,30,40
        reg.gauge("mlups").set(double(r));      // 0,1,2,3
        reg.histogram("dt", {1.0, 2.0}).record(0.5 + double(r)); // 0.5,1.5,2.5,3.5
        if (comm.rank() == 0) reg.counter("onlyRankZero").inc(99);

        const ReducedMetrics red = reg.reduce(comm);
        EXPECT_EQ(red.worldSize, 4);

        const ReducedCounter& steps = red.counters.at("steps");
        EXPECT_EQ(steps.sum, 100u);
        EXPECT_EQ(steps.min, 10u);
        EXPECT_EQ(steps.max, 40u);
        EXPECT_EQ(steps.ranks, 4);

        const ReducedCounter& lone = red.counters.at("onlyRankZero");
        EXPECT_EQ(lone.sum, 99u);
        EXPECT_EQ(lone.ranks, 1);

        const ReducedGauge& mlups = red.gauges.at("mlups");
        EXPECT_DOUBLE_EQ(mlups.min, 0.0);
        EXPECT_DOUBLE_EQ(mlups.max, 3.0);
        EXPECT_DOUBLE_EQ(mlups.avg(), 1.5);
        EXPECT_DOUBLE_EQ(mlups.sum, 6.0);

        const Histogram& dt = red.histograms.at("dt");
        EXPECT_EQ(dt.count(), 4u);
        EXPECT_EQ(dt.counts()[0], 1u); // 0.5
        EXPECT_EQ(dt.counts()[1], 1u); // 1.5
        EXPECT_EQ(dt.overflow(), 2u);  // 2.5, 3.5
        EXPECT_DOUBLE_EQ(dt.min(), 0.5);
        EXPECT_DOUBLE_EQ(dt.max(), 3.5);

        // The reduced snapshot serializes to parseable JSON on every rank.
        std::ostringstream os;
        red.writeJson(os);
        const json::Value root = json::parseOrAbort(os.str());
        EXPECT_DOUBLE_EQ(root.at("counters").at("steps").at("sum").number(), 100.0);
    });
}

TEST(MetricsRegistry, ReduceOnSerialCommIsIdentity) {
    vmpi::SerialComm comm;
    MetricsRegistry reg;
    reg.counter("c").inc(5);
    reg.gauge("g").set(2.0);
    const ReducedMetrics red = reg.reduce(comm);
    EXPECT_EQ(red.worldSize, 1);
    EXPECT_EQ(red.counters.at("c").sum, 5u);
    EXPECT_DOUBLE_EQ(red.gauges.at("g").avg(), 2.0);
}

TEST(ReduceTimingPool, MinAvgMaxAcrossFourRanks) {
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        TimingPool pool;
        // Rank r contributes two measurements of (r+1)s and one phase that
        // only exists on rank 2.
        const double mine = double(comm.rank() + 1);
        pool["phase"].addMeasurement(mine);
        pool["phase"].addMeasurement(mine);
        if (comm.rank() == 2) pool["rare"].addMeasurement(7.0);

        const ReducedTimingPool red = reduceTimingPool(comm, pool);
        EXPECT_EQ(red.worldSize, 4);

        const ReducedTimer& t = *red.find("phase");
        EXPECT_DOUBLE_EQ(t.totalMin, 2.0);  // rank 0: 2 x 1s
        EXPECT_DOUBLE_EQ(t.totalMax, 8.0);  // rank 3: 2 x 4s
        EXPECT_DOUBLE_EQ(t.totalAvg, 5.0);  // (2+4+6+8)/4
        EXPECT_DOUBLE_EQ(t.minTime, 1.0);   // fastest single measurement
        EXPECT_DOUBLE_EQ(t.maxTime, 4.0);   // slowest single measurement
        EXPECT_EQ(t.countSum, 8u);
        EXPECT_EQ(t.ranks, 4);
        EXPECT_NEAR(t.imbalance(), 8.0 / 5.0, 1e-12);

        const ReducedTimer& rare = *red.find("rare");
        EXPECT_DOUBLE_EQ(rare.totalMin, 0.0); // absent on three ranks
        EXPECT_DOUBLE_EQ(rare.totalMax, 7.0);
        EXPECT_DOUBLE_EQ(rare.totalAvg, 7.0 / 4.0);
        EXPECT_EQ(rare.ranks, 1);

        // Fractions use average totals: 5 / (5 + 1.75).
        EXPECT_NEAR(red.fraction("phase"), 5.0 / 6.75, 1e-12);
    });
}

TEST(ReduceTimingPool, Figure6ReportMentionsCommFraction) {
    vmpi::SerialComm comm;
    TimingPool pool;
    pool["communication"].addMeasurement(1.0);
    pool["collideStream"].addMeasurement(3.0);
    const ReducedTimingPool red = reduceTimingPool(comm, pool);
    std::ostringstream os;
    printFigure6Report(os, red, "communication", 12.5);
    const std::string report = os.str();
    EXPECT_NE(report.find("communication fraction"), std::string::npos);
    EXPECT_NE(report.find("25.0%"), std::string::npos);
    EXPECT_NE(report.find("collideStream"), std::string::npos);
    EXPECT_NE(report.find("MLUP/s per rank: 12.50"), std::string::npos);
}

// ---- trace recorder --------------------------------------------------------

TEST(TraceRecorder, RecordsNestedScopesWithDepth) {
    TraceRecorder rec(3);
    {
        ScopedTrace outer(rec, "timeStep");
        { ScopedTrace inner(rec, "communication"); }
        { ScopedTrace inner(rec, "collideStream"); }
    }
    ASSERT_EQ(rec.events().size(), 3u);
    // Children complete (and are appended) before the parent.
    const TraceEvent& comm = rec.events()[0];
    const TraceEvent& collide = rec.events()[1];
    const TraceEvent& step = rec.events()[2];
    EXPECT_EQ(step.name, "timeStep");
    EXPECT_EQ(step.depth, 0u);
    EXPECT_EQ(comm.depth, 1u);
    EXPECT_EQ(collide.depth, 1u);
    EXPECT_EQ(step.rank, 3);
    // Nesting: children lie within the parent interval.
    EXPECT_GE(comm.beginUs, step.beginUs);
    EXPECT_LE(comm.beginUs + comm.durUs, step.beginUs + step.durUs + 1e-6);
    EXPECT_GE(collide.beginUs, comm.beginUs + comm.durUs - 1e-6);
}

TEST(TraceRecorder, CapDropsInsteadOfGrowing) {
    TraceRecorder rec(0, /*maxEvents=*/2);
    for (int i = 0; i < 5; ++i) { ScopedTrace t(rec, "e"); }
    EXPECT_EQ(rec.events().size(), 2u);
    EXPECT_EQ(rec.dropped(), 3u);
    rec.clear();
    EXPECT_TRUE(rec.events().empty());
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, DisabledRecorderIsNoOp) {
    TraceRecorder rec(0);
    rec.setEnabled(false);
    { ScopedTrace t(rec, "x"); }
    EXPECT_TRUE(rec.events().empty());
}

TEST(TraceRecorder, ChromeExportParsesAndAttributesRanks) {
    TraceRecorder r0(0), r5(5);
    { ScopedTrace t(r0, "communication"); }
    { ScopedTrace t(r5, "collideStream"); }
    std::vector<TraceEvent> events = r0.events();
    events.insert(events.end(), r5.events().begin(), r5.events().end());

    std::ostringstream os;
    TraceRecorder::writeChromeJson(os, events);
    const json::Value root = json::parseOrAbort(os.str());
    const auto& arr = root.at("traceEvents").array();
    std::size_t complete = 0;
    std::set<int> tids;
    std::set<std::string> names;
    for (const auto& e : arr) {
        if (e.at("ph").str() == "M") continue;
        EXPECT_EQ(e.at("ph").str(), "X");
        EXPECT_GE(e.at("dur").number(), 0.0);
        tids.insert(int(e.at("tid").number()));
        names.insert(e.at("name").str());
        ++complete;
    }
    EXPECT_EQ(complete, 2u);
    EXPECT_EQ(tids, (std::set<int>{0, 5}));
    EXPECT_EQ(names, (std::set<std::string>{"communication", "collideStream"}));
}

// ---- end-to-end: 4-rank distributed cavity ---------------------------------

constexpr cell_idx_t N = 16;

void cavityFlags(field::FlagField& flags, const lbm::BoundaryFlags& masks,
                 const Cell& offset) {
    flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Cell g{offset.x + x, offset.y + y, offset.z + z};
        if (g.x < 0 || g.y < 0 || g.z < 0 || g.x >= N || g.y >= N || g.z >= N) return;
        if (g.y == N - 1) flags.addFlag(x, y, z, masks.ubb);
        else if (g.x == 0 || g.x == N - 1 || g.y == 0 || g.z == 0 || g.z == N - 1)
            flags.addFlag(x, y, z, masks.noSlip);
        else flags.addFlag(x, y, z, masks.fluid);
    });
}

bf::SetupBlockForest cavitySetup(std::uint32_t ranks) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, real_c(N), real_c(N), real_c(N));
    cfg.rootBlocksX = cfg.rootBlocksY = cfg.rootBlocksZ = 2;
    const auto cells = std::uint32_t(uint_c(N) / 2);
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = cells;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    return setup;
}

sim::DistributedSimulation::FlagInitializer distributedCavityFlags() {
    return [](field::FlagField& flags, const lbm::BoundaryFlags& masks,
              const bf::BlockForest::Block& block, const geometry::CellMapping& mapping) {
        const auto cells = cell_idx_c(std::llround(mapping.blockBox.xSize() / mapping.dx));
        const Cell offset{block.gridPos.x * cells, block.gridPos.y * cells,
                          block.gridPos.z * cells};
        cavityFlags(flags, masks, offset);
    };
}

TEST(DistributedObservability, FourRankRunProducesReportTraceAndMetrics) {
    const std::string tracePath = testing::TempDir() + "/walb_obs_fourrank.trace.json";
    const uint_t steps = 8;
    const auto setup = cavitySetup(4);

    std::string report;         // rank 0 only
    bool traceOk = false;       // rank 0 only
    std::uint64_t stepsSum = 0, bytesSent = 0, bytesRecv = 0, msgsSent = 0, msgsRecv = 0;

    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation sim(comm, setup, distributedCavityFlags());
        sim.setWallVelocity({0.04, 0, 0});
        sim.run(steps, lbm::TRT::fromOmegaAndMagic(1.3));

        // (a) reduced per-phase report with comm-fraction line.
        std::ostringstream os;
        sim.printFigure6Report(os);

        // (b) chrome trace gathered from all ranks, written by rank 0.
        const bool wrote = sim.writeChromeTrace(tracePath);

        // (c) reduced metrics.
        const ReducedMetrics red = sim.reduceMetrics();
        if (comm.rank() == 0) {
            report = os.str();
            traceOk = wrote;
            stepsSum = red.counters.at("sim.steps").sum;
            bytesSent = red.counters.at("comm.bytesSent").sum;
            bytesRecv = red.counters.at("comm.bytesReceived").sum;
            msgsSent = red.counters.at("comm.messagesSent").sum;
            msgsRecv = red.counters.at("comm.messagesReceived").sum;
        }
    });

    // (a) the Figure-6 style report.
    EXPECT_NE(report.find("reduced over 4 ranks"), std::string::npos) << report;
    EXPECT_NE(report.find("communication"), std::string::npos);
    EXPECT_NE(report.find("boundary"), std::string::npos);
    EXPECT_NE(report.find("collideStream"), std::string::npos);
    EXPECT_NE(report.find("communication fraction"), std::string::npos);
    EXPECT_NE(report.find("MLUP/s per rank"), std::string::npos);

    // (c) metrics: every rank stepped, and — message passing being
    // conservative — the world sent exactly as many bytes as it received.
    EXPECT_EQ(stepsSum, 4u * steps);
    EXPECT_GT(bytesSent, 0u);
    EXPECT_EQ(bytesSent, bytesRecv);
    EXPECT_GT(msgsSent, 0u);
    EXPECT_EQ(msgsSent, msgsRecv);

    // (b) the trace file: >= 3 distinct phase names on >= 4 distinct tids.
    ASSERT_TRUE(traceOk);
    std::string text;
    ASSERT_TRUE(readFileToString(tracePath, text));
    const json::Value root = json::parseOrAbort(text);
    std::set<std::string> phases;
    std::set<int> tids;
    std::size_t complete = 0;
    for (const auto& e : root.at("traceEvents").array()) {
        if (e.at("ph").str() == "M") continue;
        phases.insert(e.at("name").str());
        tids.insert(int(e.at("tid").number()));
        ++complete;
    }
    EXPECT_GE(phases.size(), 3u);
    EXPECT_GE(tids.size(), 4u);
    EXPECT_EQ(complete, 4u * steps * 3u); // 3 phases per step per rank
    std::remove(tracePath.c_str());
}

// ---- report helpers --------------------------------------------------------

TEST(Report, MetricsJsonArgParsing) {
    const char* argv1[] = {"bench", "--metrics-json", "/tmp/x.json"};
    EXPECT_EQ(metricsJsonPathFromArgs(3, const_cast<char**>(argv1)), "/tmp/x.json");
    const char* argv2[] = {"bench", "--metrics-json=/tmp/y.json"};
    EXPECT_EQ(metricsJsonPathFromArgs(2, const_cast<char**>(argv2)), "/tmp/y.json");
    const char* argv3[] = {"bench"};
    EXPECT_EQ(metricsJsonPathFromArgs(1, const_cast<char**>(argv3)), "");
}

TEST(Report, ValidateMetricsJsonChecksKeys) {
    const std::string path = testing::TempDir() + "/walb_obs_report.json";
    {
        std::ofstream os(path, std::ios::binary);
        os << "{\"benchmark\": \"x\", \"runs\": []}\n";
    }
    EXPECT_TRUE(validateMetricsJson(path, {"benchmark", "runs"}));
    EXPECT_FALSE(validateMetricsJson(path, {"benchmark", "missing"}));
    EXPECT_FALSE(validateMetricsJson(path + ".nope", {}));
    {
        std::ofstream os(path, std::ios::binary);
        os << "not json";
    }
    EXPECT_FALSE(validateMetricsJson(path, {}));
    std::remove(path.c_str());
}

// ---- overhead guard --------------------------------------------------------

/// Per-step instrumentation cost of the drivers: one timer scope, one trace
/// scope and a few counter increments. The acceptance bar is < 5% of a
/// micro_kernels sweep (~ms); we assert a generous absolute bound that is
/// orders of magnitude tighter than that while robust to CI noise.
TEST(Overhead, PerStepInstrumentationIsCheap) {
    TimingPool timing;
    MetricsRegistry metrics;
    TraceRecorder trace(0, std::size_t(1) << 22);
    Counter& steps = metrics.counter("sim.steps");
    Counter& bytes = metrics.counter("comm.bytesSent");

    constexpr int kSteps = 20000;
    double bestPerStepUs = 1e300;
    for (int repeat = 0; repeat < 3; ++repeat) {
        trace.clear();
        const double t0 = TraceRecorder::nowUs();
        for (int i = 0; i < kSteps; ++i) {
            {
                ScopedTimer t(timing["collideStream"]);
                ScopedTrace tr(trace, "collideStream");
            }
            steps.inc();
            bytes.inc(456);
        }
        const double t1 = TraceRecorder::nowUs();
        bestPerStepUs = std::min(bestPerStepUs, (t1 - t0) / double(kSteps));
    }
    // A micro_kernels 48^3 sweep takes ~1 ms/step; 5% of that is 50 us.
    // The instrumentation must stay far below it (typically < 1 us).
    EXPECT_LT(bestPerStepUs, 10.0) << "per-step obs overhead " << bestPerStepUs << " us";
}

} // namespace
} // namespace walb::obs
