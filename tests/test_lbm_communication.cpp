/// Ghost-layer communication tests: direction subsets (5/1/0 PDFs per
/// face/edge/corner in D3Q19), slice geometry, pack/unpack round trips,
/// local block-to-block copies, and communication-volume accounting.

#include <gtest/gtest.h>

#include "lbm/Communication.h"

namespace walb::lbm {
namespace {

TEST(Neighborhood26, CoversAllOffsetsAndInversesMatch) {
    EXPECT_EQ(neighborhood26.size(), 26u);
    std::set<std::array<int, 3>> seen(neighborhood26.begin(), neighborhood26.end());
    EXPECT_EQ(seen.size(), 26u);
    for (std::size_t i = 0; i < 26; ++i) {
        const auto& d = neighborhood26[i];
        const auto& inv = neighborhood26[neighborhood26Inv[i]];
        EXPECT_EQ(inv[0], -d[0]);
        EXPECT_EQ(inv[1], -d[1]);
        EXPECT_EQ(inv[2], -d[2]);
    }
}

TEST(CommDirections, FaceEdgeCornerCounts) {
    for (const auto& d : neighborhood26) {
        const int axes = std::abs(d[0]) + std::abs(d[1]) + std::abs(d[2]);
        const auto dirs = commDirections<D3Q19>(d);
        if (axes == 1) { EXPECT_EQ(dirs.size(), 5u) << "face"; }
        if (axes == 2) { EXPECT_EQ(dirs.size(), 1u) << "edge"; }
        if (axes == 3) { EXPECT_EQ(dirs.size(), 0u) << "corner (D3Q19 has no corner links)"; }
        // Every selected PDF actually streams across the interface.
        for (uint_t a : dirs)
            for (std::size_t i = 0; i < 3; ++i)
                if (d[i] != 0) { EXPECT_EQ(D3Q19::c[a][i], d[i]); }
    }
}

TEST(CommDirections, D3Q27HasCornerLinks) {
    const std::array<int, 3> corner = {1, 1, 1};
    EXPECT_EQ(commDirections<D3Q27>(corner).size(), 1u);
    const std::array<int, 3> face = {1, 0, 0};
    EXPECT_EQ(commDirections<D3Q27>(face).size(), 9u);
}

TEST(Slices, SendAndRecvIntervalGeometry) {
    PdfField f = makePdfField<D3Q19>(8, 6, 4);
    const std::array<int, 3> east = {1, 0, 0};
    EXPECT_EQ(sendInterval(f, east), CellInterval(7, 0, 0, 7, 5, 3));
    EXPECT_EQ(recvInterval(f, east), CellInterval(8, 0, 0, 8, 5, 3));
    const std::array<int, 3> bottomWest = {-1, 0, -1};
    EXPECT_EQ(sendInterval(f, bottomWest), CellInterval(0, 0, 0, 0, 5, 0));
    EXPECT_EQ(recvInterval(f, bottomWest), CellInterval(-1, 0, -1, -1, 5, -1));
}

TEST(Slices, PackedBytesMatchSliceSizes) {
    PdfField f = makePdfField<D3Q19>(8, 6, 4);
    // East face: 6*4 cells x 5 PDFs x 8 bytes.
    EXPECT_EQ(packedBytes<D3Q19>(f, {1, 0, 0}), 6u * 4 * 5 * 8);
    // Top-north edge: 8 cells x 1 PDF.
    EXPECT_EQ(packedBytes<D3Q19>(f, {0, 1, 1}), 8u * 1 * 8);
    // Corner: nothing.
    EXPECT_EQ(packedBytes<D3Q19>(f, {1, 1, 1}), 0u);
    // Full-set variant ships 19 PDFs for every slice cell.
    EXPECT_EQ(packedBytes<D3Q19>(f, {1, 0, 0}, true), 6u * 4 * 19 * 8);
}

/// Fills the field so every (cell, direction) slot is unique.
void fillUnique(PdfField& f) {
    real_t v = 1;
    f.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (uint_t a = 0; a < D3Q19::Q; ++a) f.get(x, y, z, cell_idx_c(a)) = v++;
    });
}

class PackUnpack : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackUnpack, RoundTripReconstructsTheGhostSlice) {
    // Sender block A and receiver block B, neighbors along direction d.
    const auto& d = neighborhood26[GetParam()];
    if (commDirections<D3Q19>(d).empty()) GTEST_SKIP() << "corner: nothing to send";

    PdfField a = makePdfField<D3Q19>(6, 6, 6);
    PdfField b = makePdfField<D3Q19>(6, 6, 6);
    fillUnique(a);
    b.fill(-1);

    SendBuffer sb;
    packPdfs<D3Q19>(a, d, sb);
    RecvBuffer rb(sb.release());
    // B receives from its neighbor in direction -d (A sits on that side).
    const std::array<int, 3> fromA = {-d[0], -d[1], -d[2]};
    unpackPdfs<D3Q19>(b, fromA, rb);
    EXPECT_TRUE(rb.atEnd());

    // Every unpacked value equals the corresponding interior value of A
    // (the ghost slice of B facing -d mirrors A's send slice facing d).
    const CellInterval src = sendInterval(a, d);
    const CellInterval dst = recvInterval(b, fromA);
    ASSERT_EQ(src.numCells(), dst.numCells());
    const Cell offset = src.min() - dst.min();
    const auto dirs = commDirections<D3Q19>(d);
    dst.forEach([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (uint_t q : dirs)
            EXPECT_EQ(b.get(x, y, z, cell_idx_c(q)),
                      a.get(x + offset.x, y + offset.y, z + offset.z, cell_idx_c(q)));
        // Directions not in the subset stay untouched.
        bool inSubset[19] = {};
        for (uint_t q : dirs) inSubset[q] = true;
        for (uint_t q = 0; q < 19; ++q)
            if (!inSubset[q]) { EXPECT_EQ(b.get(x, y, z, cell_idx_c(q)), -1.0); }
    });
}

INSTANTIATE_TEST_SUITE_P(AllDirections, PackUnpack,
                         ::testing::Range<std::size_t>(0, 26));

TEST(LocalCopy, MatchesPackUnpack) {
    const std::array<int, 3> d = {1, 0, 0}; // neighbor toward +x
    PdfField a = makePdfField<D3Q19>(5, 5, 5);
    PdfField viaCopy = makePdfField<D3Q19>(5, 5, 5);
    PdfField viaBuffer = makePdfField<D3Q19>(5, 5, 5);
    fillUnique(a);
    viaCopy.fill(-1);
    viaBuffer.fill(-1);

    // Receiver sees the sender in direction -d.
    const std::array<int, 3> fromA = {-d[0], -d[1], -d[2]};
    copyPdfsLocal<D3Q19>(a, viaCopy, fromA);

    SendBuffer sb;
    packPdfs<D3Q19>(a, d, sb);
    RecvBuffer rb(sb.release());
    unpackPdfs<D3Q19>(viaBuffer, fromA, rb);

    viaCopy.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (uint_t q = 0; q < D3Q19::Q; ++q)
            EXPECT_EQ(viaCopy.get(x, y, z, cell_idx_c(q)),
                      viaBuffer.get(x, y, z, cell_idx_c(q)));
    });
}

TEST(DirectionSliced, VolumeSavingsVsFullSet) {
    PdfField f = makePdfField<D3Q19>(16, 16, 16);
    std::size_t sliced = 0, full = 0;
    for (const auto& d : neighborhood26) {
        sliced += packedBytes<D3Q19>(f, d);
        full += packedBytes<D3Q19>(f, d, true);
    }
    // Faces: 5/19, edges 1/19, corners 0: the sliced exchange ships well
    // under a third of the naive volume.
    EXPECT_LT(double(sliced), 0.31 * double(full));
}

} // namespace
} // namespace walb::lbm
