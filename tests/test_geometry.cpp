/// Geometry pipeline tests: point-triangle distance, octree queries,
/// pseudonormal-signed distances vs. analytic ground truth, mesh IO
/// round-trips, voxelization, and the paper's block-classification
/// early-outs.

#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "core/Random.h"
#include "geometry/MarchingTetrahedra.h"
#include "geometry/MeshIO.h"
#include "geometry/Primitives.h"
#include "geometry/SignedDistance.h"
#include "geometry/Voxelizer.h"

namespace walb::geometry {
namespace {

// ---- point-triangle distance ----------------------------------------------

class PointTriangle : public ::testing::Test {
protected:
    const Vec3 a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0};
};

TEST_F(PointTriangle, FaceRegion) {
    const auto r = closestPointOnTriangle({0.5, 0.5, 3.0}, a, b, c);
    EXPECT_EQ(r.feature, TriFeature::Face);
    EXPECT_DOUBLE_EQ(r.sqrDistance, 9.0);
    EXPECT_EQ(r.point, Vec3(0.5, 0.5, 0.0));
}

TEST_F(PointTriangle, VertexRegions) {
    EXPECT_EQ(closestPointOnTriangle({-1, -1, 0}, a, b, c).feature, TriFeature::Vert0);
    EXPECT_EQ(closestPointOnTriangle({4, -1, 0}, a, b, c).feature, TriFeature::Vert1);
    EXPECT_EQ(closestPointOnTriangle({-1, 4, 0}, a, b, c).feature, TriFeature::Vert2);
    const auto r = closestPointOnTriangle({3, -1, 2}, a, b, c);
    EXPECT_DOUBLE_EQ(r.sqrDistance, 1.0 + 1.0 + 4.0);
}

TEST_F(PointTriangle, EdgeRegions) {
    EXPECT_EQ(closestPointOnTriangle({1, -1, 0}, a, b, c).feature, TriFeature::Edge01);
    EXPECT_EQ(closestPointOnTriangle({-1, 1, 0}, a, b, c).feature, TriFeature::Edge20);
    EXPECT_EQ(closestPointOnTriangle({2, 2, 0}, a, b, c).feature, TriFeature::Edge12);
    const auto r = closestPointOnTriangle({1, -2, 0}, a, b, c);
    EXPECT_EQ(r.point, Vec3(1, 0, 0));
    EXPECT_DOUBLE_EQ(r.sqrDistance, 4.0);
}

TEST_F(PointTriangle, PointOnTriangleHasZeroDistance) {
    const auto r = closestPointOnTriangle({0.5, 0.5, 0}, a, b, c);
    EXPECT_DOUBLE_EQ(r.sqrDistance, 0.0);
}

TEST(PointSegment, Distance) {
    EXPECT_DOUBLE_EQ(sqrDistancePointSegment({0, 1, 0}, {0, 0, 0}, {2, 0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(sqrDistancePointSegment({-1, 0, 0}, {0, 0, 0}, {2, 0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(sqrDistancePointSegment({3, 0, 0}, {0, 0, 0}, {2, 0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(sqrDistancePointSegment({1, 0, 0}, {1, 1, 1}, {1, 1, 1}), 2.0);
}

// ---- mesh + normals ---------------------------------------------------------

TEST(TriangleMesh, SphereAreaApproachesAnalytic) {
    const TriangleMesh mesh = makeSphereMesh({0, 0, 0}, 1.0, 48, 24);
    const real_t analytic = 4 * 3.14159265358979 * 1.0;
    EXPECT_NEAR(mesh.surfaceArea(), analytic, 0.02 * analytic);
}

TEST(TriangleMesh, SphereNormalsPointOutward) {
    TriangleMesh mesh = makeSphereMesh({1, 2, 3}, 0.5, 16, 8);
    mesh.computeNormals();
    for (std::size_t t = 0; t < mesh.numTriangles(); ++t) {
        Vec3 centroid = (mesh.triangleVertex(t, 0) + mesh.triangleVertex(t, 1) +
                         mesh.triangleVertex(t, 2)) / real_c(3);
        EXPECT_GT(mesh.faceNormal(t).dot(centroid - Vec3(1, 2, 3)), 0.0);
    }
    for (std::size_t v = 0; v < mesh.numVertices(); ++v)
        EXPECT_GT(mesh.vertexNormal(v).dot(mesh.vertex(v) - Vec3(1, 2, 3)), 0.0);
}

TEST(TriangleMesh, BoxIsClosedAndOriented) {
    TriangleMesh mesh = makeBoxMesh(AABB(0, 0, 0, 1, 2, 3));
    EXPECT_EQ(mesh.numTriangles(), 12u);
    EXPECT_NEAR(mesh.surfaceArea(), 2 * (1 * 2 + 2 * 3 + 1 * 3), 1e-12);
    mesh.computeNormals();
    const Vec3 center(0.5, 1.0, 1.5);
    for (std::size_t t = 0; t < mesh.numTriangles(); ++t) {
        const Vec3 centroid = (mesh.triangleVertex(t, 0) + mesh.triangleVertex(t, 1) +
                               mesh.triangleVertex(t, 2)) / real_c(3);
        EXPECT_GT(mesh.faceNormal(t).dot(centroid - center), 0.0) << "triangle " << t;
    }
}

// ---- octree -----------------------------------------------------------------

TEST(TriangleOctree, FindsClosestTriangleExactly) {
    TriangleMesh mesh = makeSphereMesh({0, 0, 0}, 2.0, 32, 16);
    TriangleOctree octree(mesh);
    Random rng(3);
    for (int i = 0; i < 200; ++i) {
        const Vec3 p(rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4));
        const auto fast = octree.closestTriangle(p);
        // Brute force reference.
        real_t best = 1e300;
        for (std::size_t t = 0; t < mesh.numTriangles(); ++t)
            best = std::min(best, closestPointOnTriangle(p, mesh.triangleVertex(t, 0),
                                                         mesh.triangleVertex(t, 1),
                                                         mesh.triangleVertex(t, 2))
                                      .sqrDistance);
        EXPECT_NEAR(fast.sqrDistance, best, 1e-12);
    }
}

TEST(TriangleOctree, PrunesMostTriangles) {
    TriangleMesh mesh = makeSphereMesh({0, 0, 0}, 2.0, 64, 32); // ~4k triangles
    TriangleOctree octree(mesh);
    octree.closestTriangle({2.5, 0.1, -0.3});
    // The paper's whole point of the octree (Payne & Toga): only a small
    // fraction of point-triangle distances is evaluated.
    EXPECT_LT(octree.lastQueryEvaluations(), mesh.numTriangles() / 10);
}

// ---- signed distance --------------------------------------------------------

TEST(MeshDistance, SphereMatchesAnalytic) {
    TriangleMesh mesh = makeSphereMesh({0, 0, 0}, 1.5, 48, 24);
    MeshDistance dist(mesh);
    SphereDistance analytic({0, 0, 0}, 1.5);
    Random rng(7);
    for (int i = 0; i < 300; ++i) {
        const Vec3 p(rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-3, 3));
        const real_t dm = dist.signedDistance(p);
        const real_t da = analytic.signedDistance(p);
        // Tolerance ~ faceting sag of the 48x24 tessellation.
        EXPECT_NEAR(dm, da, 0.01) << "at " << p;
        if (std::abs(da) > 0.02) { EXPECT_EQ(dm < 0, da < 0) << "sign flip at " << p; }
    }
}

TEST(MeshDistance, BoxSignIsRobustOnEdgesAndCorners) {
    TriangleMesh mesh = makeBoxMesh(AABB(0, 0, 0, 2, 2, 2));
    MeshDistance dist(mesh);
    // Probes aligned with edges/corners exercise the pseudonormal paths;
    // plain face normals would misclassify many of these.
    EXPECT_LT(dist.signedDistance({1, 1, 1}), 0);
    EXPECT_LT(dist.signedDistance({0.1, 0.1, 0.1}), 0);
    EXPECT_LT(dist.signedDistance({1.9, 1.9, 1.9}), 0);
    EXPECT_GT(dist.signedDistance({-0.1, -0.1, -0.1}), 0);
    EXPECT_GT(dist.signedDistance({2.1, 2.1, 2.1}), 0);
    EXPECT_GT(dist.signedDistance({2.1, 1.0, 1.0}), 0);
    EXPECT_GT(dist.signedDistance({-0.05, 1.0, -0.05}), 0);
    EXPECT_NEAR(dist.signedDistance({1, 1, 1}), -1.0, 1e-12);
    EXPECT_NEAR(dist.signedDistance({3, 1, 1}), 1.0, 1e-12);
}

TEST(MeshDistance, TubeMatchesCapsuleAwayFromCaps) {
    TriangleMesh mesh =
        makeTubeMesh({0, 0, 0}, {4, 0, 0}, 0.5, 0.5, 32, true, true);
    MeshDistance dist(mesh);
    CapsuleDistance capsule({0, 0, 0}, {4, 0, 0}, 0.5);
    Random rng(11);
    for (int i = 0; i < 200; ++i) {
        // Sample around the tube body, away from the flat caps where the
        // capsule (spherical ends) and the tube (flat ends) legitimately
        // differ.
        const Vec3 p(rng.uniform(0.8, 3.2), rng.uniform(-1, 1), rng.uniform(-1, 1));
        EXPECT_NEAR(dist.signedDistance(p), capsule.signedDistance(p), 0.01);
    }
}

TEST(ImplicitDistances, UnionAndComplement) {
    auto u = std::make_unique<UnionDistance>();
    u->add(std::make_unique<SphereDistance>(Vec3(0, 0, 0), 1.0));
    u->add(std::make_unique<SphereDistance>(Vec3(3, 0, 0), 1.0));
    EXPECT_LT(u->signedDistance({0, 0, 0}), 0);
    EXPECT_LT(u->signedDistance({3, 0, 0}), 0);
    EXPECT_GT(u->signedDistance({1.5, 0, 0}), 0);
    EXPECT_DOUBLE_EQ(u->signedDistance({5, 0, 0}), 1.0);

    ComplementDistance comp(std::move(u));
    EXPECT_GT(comp.signedDistance({0, 0, 0}), 0);
    EXPECT_LT(comp.signedDistance({1.5, 0, 0}), 0);
}

TEST(ImplicitDistances, BoxSDF) {
    BoxDistance box(AABB(0, 0, 0, 2, 4, 6));
    EXPECT_DOUBLE_EQ(box.signedDistance({1, 2, 3}), -1.0);
    EXPECT_DOUBLE_EQ(box.signedDistance({-1, 2, 3}), 1.0);
    EXPECT_NEAR(box.signedDistance({-3, -4, 3}), 5.0, 1e-12);
    EXPECT_DOUBLE_EQ(box.signedDistance({0, 2, 3}), 0.0);
}

// ---- mesh IO ----------------------------------------------------------------

TEST(MeshIO, OffRoundTripPreservesGeometryAndColors) {
    TriangleMesh mesh = makeTubeMesh({0, 0, 0}, {1, 0, 0}, 0.3, 0.3, 8, true, true,
                                     kColorWall, kColorInflow, kColorOutflow);
    const std::string path = testing::TempDir() + "/walb_mesh.off";
    ASSERT_TRUE(writeOff(path, mesh));
    TriangleMesh loaded;
    ASSERT_TRUE(readOff(path, loaded));
    ASSERT_EQ(loaded.numVertices(), mesh.numVertices());
    ASSERT_EQ(loaded.numTriangles(), mesh.numTriangles());
    for (std::size_t v = 0; v < mesh.numVertices(); ++v) {
        EXPECT_NEAR((loaded.vertex(v) - mesh.vertex(v)).length(), 0.0, 1e-12);
        EXPECT_EQ(loaded.color(v), mesh.color(v));
    }
    std::remove(path.c_str());
}

TEST(MeshIO, StlRoundTripPreservesTopology) {
    TriangleMesh mesh = makeSphereMesh({0, 0, 0}, 1.0, 12, 6);
    const std::string path = testing::TempDir() + "/walb_mesh.stl";
    ASSERT_TRUE(writeStlBinary(path, mesh));
    TriangleMesh loaded;
    ASSERT_TRUE(readStlBinary(path, loaded));
    EXPECT_EQ(loaded.numTriangles(), mesh.numTriangles());
    EXPECT_EQ(loaded.numVertices(), mesh.numVertices()); // dedup restores indexing
    EXPECT_NEAR(loaded.surfaceArea(), mesh.surfaceArea(), 1e-4);
    std::remove(path.c_str());
}

TEST(MeshIO, ReadOffRejectsGarbage) {
    const std::string path = testing::TempDir() + "/walb_garbage.off";
    std::ofstream(path) << "NOT_A_MESH 1 2 3";
    TriangleMesh mesh;
    EXPECT_FALSE(readOff(path, mesh));
    std::remove(path.c_str());
}

// ---- voxelization -----------------------------------------------------------

TEST(Voxelizer, SphereFluidCountMatchesVolume) {
    SphereDistance sphere({1, 1, 1}, 0.8);
    field::FlagField flags(40, 40, 40, 1);
    const auto fluid = flags.registerFlag("fluid");
    const CellMapping mapping{AABB(0, 0, 0, 2, 2, 2), 0.05};
    const auto stats = voxelize(sphere, flags, mapping, fluid);
    const real_t analytic = 4.0 / 3.0 * 3.14159265 * 0.8 * 0.8 * 0.8;
    const real_t voxelVolume = real_c(flags.count(fluid)) * 0.05 * 0.05 * 0.05;
    EXPECT_NEAR(voxelVolume, analytic, 0.05 * analytic);
    EXPECT_EQ(stats.fluidCells, flags.count(fluid)); // ghost cells outside sphere here
}

TEST(Voxelizer, HierarchicalPruningSkipsMostCells) {
    SphereDistance sphere({1, 1, 1}, 0.8);
    field::FlagField flags(64, 64, 64, 1);
    const auto fluid = flags.registerFlag("fluid");
    const auto stats = voxelize(sphere, flags, {AABB(0, 0, 0, 2, 2, 2), 2.0 / 64}, fluid);
    // Per-cell evaluations must be far fewer than total cells (interface-
    // proportional): 66^3 ~ 287k cells, interface ~ O(64^2).
    EXPECT_LT(stats.cellsEvaluated, 287496u / 4);
    EXPECT_GT(stats.regionsPruned, 10u);
}

TEST(Voxelizer, MatchesBruteForcePerCellTest) {
    SphereDistance sphere({0.7, 1.1, 0.9}, 0.55);
    field::FlagField fast(24, 24, 24, 1), brute(24, 24, 24, 1);
    const auto fluidF = fast.registerFlag("fluid");
    const auto fluidB = brute.registerFlag("fluid");
    const CellMapping mapping{AABB(0, 0, 0, 2, 2, 2), 2.0 / 24};
    voxelize(sphere, fast, mapping, fluidF);
    brute.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (sphere.signedDistance(mapping.cellCenter(x, y, z)) < 0)
            brute.addFlag(x, y, z, fluidB);
    });
    brute.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        EXPECT_EQ(fast.get(x, y, z) != 0, brute.get(x, y, z) != 0)
            << "cell " << x << ',' << y << ',' << z;
    });
}

TEST(Voxelizer, CountFluidCellsAgreesWithVoxelize) {
    SphereDistance sphere({1, 1, 1}, 0.6);
    field::FlagField flags(30, 30, 30, 0); // no ghost: interior only
    const auto fluid = flags.registerFlag("fluid");
    const CellMapping mapping{AABB(0, 0, 0, 2, 2, 2), 2.0 / 30};
    voxelize(sphere, flags, mapping, fluid);
    EXPECT_EQ(countFluidCells(sphere, mapping, 30, 30, 30), flags.count(fluid));
}

// ---- marching tetrahedra ----------------------------------------------------

TEST(MarchingTetrahedra, SphereSurfaceAreaAndOrientation) {
    SphereDistance sphere({0, 0, 0}, 1.0);
    TriangleMesh mesh =
        extractIsosurface(sphere, AABB(-1.5, -1.5, -1.5, 1.5, 1.5, 1.5), 40, 40, 40);
    ASSERT_GT(mesh.numTriangles(), 100u);
    const real_t analytic = 4 * 3.14159265358979;
    EXPECT_NEAR(mesh.surfaceArea(), analytic, 0.03 * analytic);
    // Every face normal points away from the center (outward convention).
    for (std::size_t t = 0; t < mesh.numTriangles(); ++t) {
        const Vec3 centroid = (mesh.triangleVertex(t, 0) + mesh.triangleVertex(t, 1) +
                               mesh.triangleVertex(t, 2)) / real_c(3);
        EXPECT_GT(mesh.faceNormalRaw(t).dot(centroid), 0.0);
    }
}

TEST(MarchingTetrahedra, OutputIsWatertight) {
    SphereDistance sphere({0, 0, 0}, 0.8);
    TriangleMesh mesh =
        extractIsosurface(sphere, AABB(-1.2, -1.2, -1.2, 1.2, 1.2, 1.2), 24, 24, 24);
    // Watertight <=> every edge is shared by exactly two triangles.
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> edgeUse;
    for (std::size_t t = 0; t < mesh.numTriangles(); ++t) {
        const auto& tri = mesh.triangle(t);
        for (unsigned e = 0; e < 3; ++e) {
            auto a = tri[e], b = tri[(e + 1) % 3];
            if (a > b) std::swap(a, b);
            ++edgeUse[{a, b}];
        }
    }
    for (const auto& [edge, count] : edgeUse) EXPECT_EQ(count, 2);
}

TEST(MarchingTetrahedra, VerticesLieOnTheIsosurface) {
    SphereDistance sphere({0.1, -0.2, 0.3}, 0.7);
    TriangleMesh mesh =
        extractIsosurface(sphere, AABB(-1, -1, -1, 1, 1, 1), 32, 32, 32);
    const real_t h = 2.0 / 32;
    for (std::size_t v = 0; v < mesh.numVertices(); ++v)
        EXPECT_LT(std::abs(sphere.signedDistance(mesh.vertex(v))), 0.5 * h * h / 0.7 + 1e-6);
}

TEST(MarchingTetrahedra, SignedDistanceOfExtractionMatchesSource) {
    // Round trip: implicit -> mesh -> MeshDistance must agree with the
    // implicit SDF up to the grid resolution.
    CapsuleDistance capsule({-0.5, 0, 0}, {0.5, 0, 0}, 0.4);
    TriangleMesh mesh =
        extractIsosurface(capsule, AABB(-1.2, -1, -1, 1.2, 1, 1), 48, 40, 40);
    MeshDistance meshDist(mesh);
    Random rng(21);
    for (int i = 0; i < 200; ++i) {
        const Vec3 p(rng.uniform(-1.1, 1.1), rng.uniform(-0.9, 0.9), rng.uniform(-0.9, 0.9));
        EXPECT_NEAR(meshDist.signedDistance(p), capsule.signedDistance(p), 0.05);
    }
}

TEST(BlockClassification, EarlyOutsAreConservativeAndCorrect) {
    SphereDistance sphere({0, 0, 0}, 1.0);
    // Far outside block.
    EXPECT_EQ(classifyBlock(sphere, AABB(5, 5, 5, 6, 6, 6)), BlockCoverage::Outside);
    // Tiny block at the center: entirely inside.
    EXPECT_EQ(classifyBlock(sphere, AABB(-0.1, -0.1, -0.1, 0.1, 0.1, 0.1)),
              BlockCoverage::Inside);
    // Block straddling the surface.
    EXPECT_EQ(classifyBlock(sphere, AABB(0.8, -0.2, -0.2, 1.2, 0.2, 0.2)),
              BlockCoverage::Mixed);
}

} // namespace
} // namespace walb::geometry
