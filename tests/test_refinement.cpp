/// Tests for the inter-level transfer operators: conservation under
/// restriction, inverse relations, and exact reproduction of constant and
/// linear fields — the algebraic requirements for grid-refined LBM.

#include <gtest/gtest.h>

#include "core/Random.h"
#include "lbm/PdfField.h"
#include "lbm/Refinement.h"

namespace walb::lbm {
namespace {

using field::Field;
using field::Layout;

Field<real_t> makeCoarse(cell_idx_t n, uint_t f = 2, cell_idx_t ghost = 1) {
    return Field<real_t>(n, n, n, f, Layout::fzyx, 0.0, ghost);
}
Field<real_t> makeFine(cell_idx_t n, uint_t f = 2) {
    return Field<real_t>(2 * n, 2 * n, 2 * n, f, Layout::fzyx, 0.0, 1);
}

TEST(Refinement, RestrictionConservesTotals) {
    const cell_idx_t n = 4;
    Field<real_t> fine = makeFine(n);
    Random rng(5);
    fine.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        fine.get(x, y, z, 0) = rng.uniform(0.5, 1.5);
        fine.get(x, y, z, 1) = rng.uniform(-1, 1);
    });
    Field<real_t> coarse = makeCoarse(n);
    restrictToCoarse(fine, coarse);

    for (cell_idx_t f = 0; f < 2; ++f) {
        real_t fineTotal = 0, coarseTotal = 0;
        fine.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            fineTotal += fine.get(x, y, z, f);
        });
        coarse.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            coarseTotal += coarse.get(x, y, z, f);
        });
        // Averaging: coarse total = fine total / 8 (cell volume ratio).
        EXPECT_NEAR(coarseTotal * 8, fineTotal, 1e-12 * std::abs(fineTotal) + 1e-14);
    }
}

TEST(Refinement, RestrictAfterConstantProlongateIsIdentity) {
    const cell_idx_t n = 3;
    Field<real_t> coarse = makeCoarse(n, 1);
    Random rng(7);
    coarse.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        coarse.get(x, y, z, 0) = rng.uniform(0, 1);
    });
    Field<real_t> fine = makeFine(n, 1);
    prolongateConstant(coarse, fine);
    Field<real_t> back = makeCoarse(n, 1);
    restrictToCoarse(fine, back);
    coarse.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        EXPECT_DOUBLE_EQ(back.get(x, y, z, 0), coarse.get(x, y, z, 0));
    });
}

TEST(Refinement, TrilinearReproducesConstants) {
    const cell_idx_t n = 4;
    Field<real_t> coarse = makeCoarse(n, 1);
    coarse.fill(2.5); // including ghost cells
    Field<real_t> fine = makeFine(n, 1);
    prolongateTrilinear(coarse, fine);
    fine.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        EXPECT_DOUBLE_EQ(fine.get(x, y, z, 0), 2.5);
    });
}

TEST(Refinement, TrilinearReproducesLinearFields) {
    const cell_idx_t n = 4;
    Field<real_t> coarse = makeCoarse(n, 1);
    // Linear field in physical coordinates (coarse spacing 1, fine 1/2):
    // v(p) = 2 px - 3 py + 0.5 pz, sampled at cell centers incl. ghosts.
    auto linear = [](real_t px, real_t py, real_t pz) {
        return 2 * px - 3 * py + real_c(0.5) * pz;
    };
    coarse.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        coarse.get(x, y, z, 0) =
            linear(real_c(x) + real_c(0.5), real_c(y) + real_c(0.5), real_c(z) + real_c(0.5));
    });
    Field<real_t> fine = makeFine(n, 1);
    prolongateTrilinear(coarse, fine);
    fine.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const real_t expected =
            linear((real_c(x) + real_c(0.5)) / 2, (real_c(y) + real_c(0.5)) / 2,
                   (real_c(z) + real_c(0.5)) / 2);
        EXPECT_NEAR(fine.get(x, y, z, 0), expected, 1e-12) << x << ',' << y << ',' << z;
    });
}

TEST(Refinement, EquilibriumSurvivesRoundTrip) {
    // A PDF field at uniform equilibrium restricted and prolongated stays
    // at the same equilibrium — levels can hand over quiescent regions
    // without disturbance.
    const cell_idx_t n = 4;
    Field<real_t> fine(2 * n, 2 * n, 2 * n, D3Q19::Q, Layout::fzyx, 0.0, 1);
    initEquilibrium<D3Q19>(fine, 1.02, {0.01, -0.02, 0.005});
    Field<real_t> coarse(n, n, n, D3Q19::Q, Layout::fzyx, 0.0, 1);
    restrictToCoarse(fine, coarse);
    coarse.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        for (uint_t a = 0; a < D3Q19::Q; ++a)
            EXPECT_NEAR(coarse.get(x, y, z, cell_idx_c(a)),
                        equilibrium<D3Q19>(a, 1.02, {0.01, -0.02, 0.005}), 1e-14);
    });
}

} // namespace
} // namespace walb::lbm
