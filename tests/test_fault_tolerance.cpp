/// Tests for the fault-tolerant runtime (ISSUE PR 2): typed buffer underflow
/// errors, CRC32, recv deadlines, FaultyComm fault injection, the versioned
/// CRC-protected checkpoint format, the HealthMonitor guards — and the
/// end-to-end acceptance drill: a 4-rank run whose rank is killed mid-run
/// terminates with a structured CommError (no hang) and a restart from the
/// last checkpoint reproduces the uninterrupted run bit-exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/BinaryIO.h"
#include "core/Buffer.h"
#include "core/Crc32.h"
#include "sim/Checkpoint.h"
#include "sim/DistributedSimulation.h"
#include "sim/Health.h"
#include "vmpi/BufferSystem.h"
#include "vmpi/FaultyComm.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using lbm::TRT;
using namespace std::chrono_literals;

// ---- typed buffer errors ---------------------------------------------------

TEST(BufferErrorTest, UnderflowThrowsTypedErrorWithCounts) {
    RecvBuffer rb(std::vector<std::uint8_t>{1, 2});
    std::uint32_t v = 0;
    try {
        rb >> v;
        FAIL() << "expected BufferError";
    } catch (const BufferError& e) {
        EXPECT_EQ(e.requested, 4u);
        EXPECT_EQ(e.available, 2u);
        EXPECT_NE(std::string(e.what()).find("underflow"), std::string::npos);
    }
}

TEST(BufferErrorTest, CorruptLengthFieldDoesNotDriveAllocation) {
    // A vector length decoded as "huge" must raise BufferError *before* any
    // resize(): the allocation size would otherwise be attacker-controlled.
    SendBuffer sb;
    sb << std::uint64_t(1) << std::uint64_t(42); // element count lies: says 1...
    std::vector<std::uint8_t> bytes = sb.release();
    bytes[0] = 0xff; // ...now says 255+ with only 8 payload bytes present
    RecvBuffer rb(std::move(bytes));
    std::vector<std::uint64_t> v;
    EXPECT_THROW(rb >> v, BufferError);

    SendBuffer sb2;
    sb2 << std::uint32_t(1000); // string claims 1000 chars, carries none
    RecvBuffer rb2(sb2.release());
    std::string s;
    EXPECT_THROW(rb2 >> s, BufferError);
}

TEST(BufferErrorTest, SkipAndCursorHonorBounds) {
    RecvBuffer rb(std::vector<std::uint8_t>{9, 8, 7});
    EXPECT_EQ(*rb.cursor(), 9);
    rb.skip(2);
    EXPECT_EQ(*rb.cursor(), 7);
    EXPECT_THROW(rb.skip(2), BufferError);
    rb.skip(1);
    EXPECT_TRUE(rb.atEnd());
}

// ---- crc32 -----------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVector) {
    // The canonical IEEE 802.3 check value.
    const char* s = "123456789";
    EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32Test, SeedChainingEqualsOneShot) {
    const std::uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    const std::uint32_t oneShot = crc32(data, 8);
    std::uint32_t chained = crc32(data, 3);
    chained = crc32(data + 3, 5, chained);
    EXPECT_EQ(oneShot, chained);
    EXPECT_NE(crc32(data, 7), oneShot);
}

// ---- recv deadlines --------------------------------------------------------

TEST(RecvDeadline, ThreadCommThrowsStructuredErrorInsteadOfHanging) {
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        if (comm.rank() != 0) return; // rank 1 never sends
        comm.setRecvDeadline(50ms);
        try {
            comm.recv(1, 7);
            FAIL() << "expected CommError";
        } catch (const vmpi::CommError& e) {
            EXPECT_EQ(e.kind, vmpi::CommError::Kind::DeadlineExceeded);
            EXPECT_EQ(e.peer, 1);
            EXPECT_EQ(e.tag, 7);
            EXPECT_GE(e.elapsed, 0.04);
        }
    });
}

TEST(RecvDeadline, DeliveredMessageBeatsTheDeadline) {
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        comm.setRecvDeadline(5000ms);
        if (comm.rank() == 0) {
            vmpi::sendObject(comm, 1, 3, std::uint32_t(1234));
        } else {
            EXPECT_EQ(vmpi::recvObject<std::uint32_t>(comm, 0, 3), 1234u);
        }
    });
}

TEST(RecvDeadline, SerialCommReportsInstantDeadlockStructurally) {
    vmpi::SerialComm comm;
    try {
        comm.recv(0, 5);
        FAIL() << "expected CommError";
    } catch (const vmpi::CommError& e) {
        EXPECT_EQ(e.kind, vmpi::CommError::Kind::DeadlineExceeded);
        EXPECT_EQ(e.tag, 5);
    }
}

TEST(RecvDeadline, BufferSystemCountsMissesAndRethrows) {
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        if (comm.rank() != 0) return;
        comm.setRecvDeadline(50ms);
        vmpi::BufferSystem bs(comm, /*tag=*/9);
        bs.setReceiverInfo({1}); // rank 1 will never send on tag 9
        EXPECT_THROW(bs.exchange(), vmpi::CommError);
        EXPECT_EQ(bs.deadlineMisses(), 1u);
    });
}

// ---- fault injection -------------------------------------------------------

TEST(FaultyCommTest, DropMakesTheReceiverMissItsDeadline) {
    vmpi::FaultPlan plan;
    plan.messageFaults.push_back({vmpi::FaultPlan::Action::Drop, /*src=*/0,
                                  /*dest=*/-1, /*tag=*/-1, /*matchIndex=*/0});
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(50ms);
        if (comm.rank() == 0) {
            vmpi::sendObject(faulty, 1, 1, std::uint32_t(1)); // dropped
            EXPECT_EQ(faulty.counts().dropped, 1u);
        } else {
            EXPECT_THROW(vmpi::recvObject<std::uint32_t>(faulty, 0, 1),
                         vmpi::CommError);
        }
    });
}

TEST(FaultyCommTest, DelayReordersMessages) {
    vmpi::FaultPlan plan;
    vmpi::FaultPlan::MessageFault f;
    f.action = vmpi::FaultPlan::Action::Delay;
    f.srcRank = 0;
    f.matchIndex = 0; // hold the first send back...
    f.delayBySends = 1; // ...until one more send went out
    plan.messageFaults.push_back(f);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        if (comm.rank() == 0) {
            vmpi::sendObject(faulty, 1, 1, std::uint32_t(111)); // delayed
            vmpi::sendObject(faulty, 1, 1, std::uint32_t(222)); // overtakes
            EXPECT_EQ(faulty.counts().delayed, 1u);
        } else {
            faulty.setRecvDeadline(5000ms);
            EXPECT_EQ(vmpi::recvObject<std::uint32_t>(faulty, 0, 1), 222u);
            EXPECT_EQ(vmpi::recvObject<std::uint32_t>(faulty, 0, 1), 111u);
        }
    });
}

TEST(FaultyCommTest, BarrierFlushesDelayedMessages) {
    vmpi::FaultPlan plan;
    vmpi::FaultPlan::MessageFault f;
    f.action = vmpi::FaultPlan::Action::Delay;
    f.srcRank = 0;
    f.delayBySends = 100; // would be held essentially forever
    plan.messageFaults.push_back(f);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(5000ms);
        if (comm.rank() == 0) vmpi::sendObject(faulty, 1, 1, std::uint32_t(7));
        faulty.barrier(); // orders everything: the held message must go out
        if (comm.rank() == 1) {
            EXPECT_EQ(vmpi::recvObject<std::uint32_t>(faulty, 0, 1), 7u);
        }
    });
}

TEST(FaultyCommTest, DuplicateDeliversTwice) {
    vmpi::FaultPlan plan;
    plan.messageFaults.push_back({vmpi::FaultPlan::Action::Duplicate, 0});
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(5000ms);
        if (comm.rank() == 0) {
            vmpi::sendObject(faulty, 1, 1, std::uint32_t(5));
            EXPECT_EQ(faulty.counts().duplicated, 1u);
        } else {
            EXPECT_EQ(vmpi::recvObject<std::uint32_t>(faulty, 0, 1), 5u);
            EXPECT_EQ(vmpi::recvObject<std::uint32_t>(faulty, 0, 1), 5u);
        }
    });
}

TEST(FaultyCommTest, TruncateSurfacesAsBufferErrorOnDeserialization) {
    vmpi::FaultPlan plan;
    vmpi::FaultPlan::MessageFault f;
    f.action = vmpi::FaultPlan::Action::Truncate;
    f.srcRank = 0;
    f.truncateToBytes = 2; // a u32 message loses its upper half
    plan.messageFaults.push_back(f);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(5000ms);
        if (comm.rank() == 0) {
            vmpi::sendObject(faulty, 1, 1, std::uint32_t(0xDEADBEEF));
        } else {
            EXPECT_THROW(vmpi::recvObject<std::uint32_t>(faulty, 0, 1), BufferError);
        }
    });
}

TEST(FaultyCommTest, TruncateThroughBufferSystemBecomesCommErrorCorrupt) {
    vmpi::FaultPlan plan;
    vmpi::FaultPlan::MessageFault f;
    f.action = vmpi::FaultPlan::Action::Truncate;
    f.srcRank = 0;
    f.truncateToBytes = 3;
    plan.messageFaults.push_back(f);
    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(5000ms);
        vmpi::BufferSystem bs(faulty, /*tag=*/4);
        bs.setReceiverInfo({1 - comm.rank()});
        bs.sendBuffer(1 - comm.rank()) << std::uint64_t(0x1122334455667788ull);
        bs.exchange();
        if (comm.rank() == 1) {
            try {
                bs.forEachRecvBuffer([](int, RecvBuffer& buf) {
                    std::uint64_t v = 0;
                    buf >> v;
                });
                FAIL() << "expected CommError";
            } catch (const vmpi::CommError& e) {
                EXPECT_EQ(e.kind, vmpi::CommError::Kind::Corrupt);
                EXPECT_EQ(e.peer, 0);
                EXPECT_EQ(e.tag, 4);
            }
        } else {
            bs.forEachRecvBuffer([](int, RecvBuffer& buf) {
                std::uint64_t v = 0;
                buf >> v;
                EXPECT_EQ(v, 0x1122334455667788ull);
            });
        }
    });
}

TEST(FaultyCommTest, BeginStepKillsThePlannedRankAtThePlannedStep) {
    vmpi::FaultPlan plan;
    plan.killRank = 0;
    plan.killAtStep = 3;
    vmpi::SerialComm inner;
    vmpi::FaultyComm faulty(inner, plan);
    faulty.beginStep(0);
    faulty.beginStep(2); // other steps pass
    try {
        faulty.beginStep(3);
        FAIL() << "expected CommError";
    } catch (const vmpi::CommError& e) {
        EXPECT_EQ(e.kind, vmpi::CommError::Kind::RankKilled);
        EXPECT_EQ(e.peer, 0);
    }
    EXPECT_EQ(faulty.counts().killed, 1u);
}

TEST(FaultyCommTest, InjectionsFeedTheObsCounter) {
    obs::MetricsRegistry metrics;
    vmpi::FaultPlan plan;
    plan.messageFaults.push_back({vmpi::FaultPlan::Action::Drop, /*src=*/-1});
    vmpi::SerialComm inner;
    vmpi::FaultyComm faulty(inner, plan, &metrics);
    faulty.send(0, 1, {1, 2, 3});
    EXPECT_EQ(metrics.counter("comm.faults_injected").value(), 1u);
    EXPECT_EQ(faulty.faultsInjected(), 1u);
}

TEST(FaultPlanTest, RandomizedPlansAreSeedDeterministic) {
    const auto a = vmpi::FaultPlan::randomized(42, 8, 6);
    const auto b = vmpi::FaultPlan::randomized(42, 8, 6);
    ASSERT_EQ(a.messageFaults.size(), 6u);
    for (std::size_t i = 0; i < a.messageFaults.size(); ++i) {
        EXPECT_EQ(a.messageFaults[i].action, b.messageFaults[i].action);
        EXPECT_EQ(a.messageFaults[i].srcRank, b.messageFaults[i].srcRank);
        EXPECT_EQ(a.messageFaults[i].matchIndex, b.messageFaults[i].matchIndex);
    }
    // A different seed produces a different scenario (overwhelmingly likely).
    const auto c = vmpi::FaultPlan::randomized(43, 8, 6);
    bool anyDifferent = false;
    for (std::size_t i = 0; i < a.messageFaults.size(); ++i)
        anyDifferent |= a.messageFaults[i].action != c.messageFaults[i].action ||
                        a.messageFaults[i].srcRank != c.messageFaults[i].srcRank ||
                        a.messageFaults[i].matchIndex != c.messageFaults[i].matchIndex;
    EXPECT_TRUE(anyDifferent);
}

// ---- checkpoint format -----------------------------------------------------

/// 4-block lid-driven cavity used by all simulation-level tests: the lid
/// keeps the state evolving so bit-exactness is a real statement.
bf::SetupBlockForest makeCavitySetup(std::uint32_t ranks) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8.0 * ranks, 8, 8);
    cfg.rootBlocksX = ranks;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    return setup;
}

sim::DistributedSimulation::FlagInitializer cavityFlags(std::uint32_t ranks) {
    const cell_idx_t NX = 8 * cell_idx_c(ranks);
    return [NX](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                const bf::BlockForest::Block&, const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > real_c(NX) || p[1] > 8 ||
                p[2] > 8)
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.z == 7) flags.addFlag(x, y, z, masks.ubb);
            else if (g.x == 0 || g.x == NX - 1 || g.y == 0 || g.y == 7 || g.z == 0)
                flags.addFlag(x, y, z, masks.noSlip);
            else flags.addFlag(x, y, z, masks.fluid);
        });
    };
}

TEST(CheckpointFormat, PeekReadsTheHeader) {
    const std::string path = testing::TempDir() + "/walb_peek.wckp";
    auto setup = makeCavitySetup(1);
    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(comm, setup, cavityFlags(1));
    simulation.setWallVelocity({0.03, 0, 0});
    simulation.run(5, TRT::fromOmegaAndMagic(1.4));
    std::size_t bytes = 0;
    ASSERT_TRUE(sim::checkpointSave(simulation, path, simulation.currentStep(), &bytes));
    EXPECT_GT(bytes, 0u);

    sim::CheckpointHeader h;
    std::string err;
    ASSERT_TRUE(sim::checkpointPeek(path, h, &err)) << err;
    EXPECT_EQ(h.version, sim::kCheckpointVersion);
    EXPECT_EQ(h.worldSize, 1u);
    EXPECT_EQ(h.step, 5u);
    EXPECT_EQ(h.cellsX, 8u);
    EXPECT_EQ(h.numRankContributions, 1u);
    std::remove(path.c_str());
}

TEST(CheckpointFormat, RestoresStepCounterAndReportsMetrics) {
    const std::string path = testing::TempDir() + "/walb_step.wckp";
    auto setup = makeCavitySetup(1);
    const TRT op = TRT::fromOmegaAndMagic(1.4);
    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(comm, setup, cavityFlags(1));
    simulation.setWallVelocity({0.03, 0, 0});
    simulation.run(7, op);
    EXPECT_EQ(simulation.currentStep(), 7u);
    ASSERT_TRUE(simulation.saveCheckpoint(path));
    EXPECT_GT(simulation.metrics().counter("ckpt.bytes").value(), 0u);
    EXPECT_GE(simulation.metrics().gauge("ckpt.seconds").value(), 0.0);

    vmpi::SerialComm comm2;
    sim::DistributedSimulation resumed(comm2, setup, cavityFlags(1));
    resumed.setWallVelocity({0.03, 0, 0});
    ASSERT_TRUE(resumed.loadCheckpoint(path));
    EXPECT_EQ(resumed.currentStep(), 7u);
    EXPECT_EQ(resumed.stateDigest(), simulation.stateDigest());
    std::remove(path.c_str());
}

TEST(CheckpointFormat, CorruptedPayloadIsRejectedByCrc) {
    const std::string path = testing::TempDir() + "/walb_crc.wckp";
    auto setup = makeCavitySetup(1);
    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(comm, setup, cavityFlags(1));
    simulation.setWallVelocity({0.03, 0, 0});
    simulation.run(3, TRT::fromOmegaAndMagic(1.4));
    ASSERT_TRUE(simulation.saveCheckpoint(path));

    // Flip one byte deep inside the (CRC-protected) payload region.
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(readFile(path, bytes));
    bytes[bytes.size() - 10] ^= 0x5a;
    SendBuffer out;
    out.putBytes(bytes.data(), bytes.size());
    ASSERT_TRUE(writeFile(path, out));

    const std::uint64_t digestBefore = simulation.stateDigest();
    std::string err;
    EXPECT_FALSE(simulation.loadCheckpoint(path, &err));
    EXPECT_NE(err.find("CRC"), std::string::npos) << err;
    // The corrupted payload must not have clobbered the live state.
    EXPECT_EQ(simulation.stateDigest(), digestBefore);
    std::remove(path.c_str());
}

TEST(CheckpointFormat, BadMagicAndTruncationFailCleanly) {
    const std::string path = testing::TempDir() + "/walb_bad.wckp";
    {
        std::ofstream os(path, std::ios::binary);
        os << "this is not a checkpoint";
    }
    sim::CheckpointHeader h;
    std::string err;
    EXPECT_FALSE(sim::checkpointPeek(path, h, &err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(CheckpointOptionsTest, ParsesBothFlagStyles) {
    const char* argv[] = {"prog",
                          "--checkpoint-every", "8",
                          "--checkpoint-path=/tmp/x.wckp",
                          "--restart-from", "/tmp/y.wckp",
                          "--stop-after=16",
                          "--steps", "30"};
    const auto opt = sim::CheckpointOptions::fromArgs(
        int(std::size(argv)), const_cast<char**>(argv));
    EXPECT_EQ(opt.every, 8u);
    EXPECT_EQ(opt.path, "/tmp/x.wckp");
    EXPECT_EQ(opt.restartFrom, "/tmp/y.wckp");
    EXPECT_EQ(opt.stopAfter, 16u);
    EXPECT_EQ(opt.steps, 30u);
    EXPECT_TRUE(opt.any());
    EXPECT_FALSE(sim::CheckpointOptions{}.any());
}

// ---- health guards ---------------------------------------------------------

TEST(HealthMonitorTest, HealthyRunPassesAndReportsGauges) {
    auto setup = makeCavitySetup(1);
    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(comm, setup, cavityFlags(1));
    simulation.setWallVelocity({0.03, 0, 0});
    sim::HealthPolicy policy;
    policy.checkEvery = 4;
    simulation.attachHealthMonitor(policy);
    EXPECT_NO_THROW(simulation.run(8, TRT::fromOmegaAndMagic(1.4)));
    EXPECT_EQ(simulation.metrics().gauge("health.nan_cells").value(), 0.0);
    EXPECT_LT(std::abs(simulation.metrics().gauge("health.mass_drift").value()), 1e-6);
    EXPECT_EQ(simulation.metrics().counter("health.violations").value(), 0u);
}

TEST(HealthMonitorTest, SeededNaNIsCaughtAndEmergencyCheckpointed) {
    const std::string emergency = testing::TempDir() + "/walb_nan_emergency.wckp";
    std::remove(emergency.c_str());
    auto setup = makeCavitySetup(1);
    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(comm, setup, cavityFlags(1));
    simulation.setWallVelocity({0.03, 0, 0});
    sim::HealthPolicy policy;
    policy.checkEvery = 2;
    policy.emergencyPath = emergency;
    simulation.attachHealthMonitor(policy);
    simulation.run(2, TRT::fromOmegaAndMagic(1.4)); // baseline captured, healthy

    // Seed a NaN into one interior fluid PDF.
    simulation.pdfField(0).get(4, 4, 4, 0) = std::nan("");
    try {
        simulation.run(2, TRT::fromOmegaAndMagic(1.4));
        FAIL() << "expected HealthError";
    } catch (const sim::HealthError& e) {
        EXPECT_FALSE(e.report.ok);
        EXPECT_GE(e.report.nonFiniteCells, 1u);
    }
    EXPECT_EQ(simulation.metrics().counter("health.violations").value(), 1u);
    // The emergency checkpoint was written (under its rank/step-decorated
    // name) and is a parseable v2 file.
    const std::string written = simulation.healthMonitor()->lastEmergencyPath();
    ASSERT_FALSE(written.empty());
    EXPECT_NE(written.find(".r0.s"), std::string::npos) << written;
    sim::CheckpointHeader h;
    std::string err;
    EXPECT_TRUE(sim::checkpointPeek(written, h, &err)) << err;
    std::remove(written.c_str());
}

TEST(HealthMonitorTest, MassLeakIsCaught) {
    auto setup = makeCavitySetup(1);
    vmpi::SerialComm comm;
    sim::DistributedSimulation simulation(comm, setup, cavityFlags(1));
    simulation.setWallVelocity({0.03, 0, 0});
    sim::HealthPolicy policy;
    policy.checkEvery = 2;
    policy.maxMassDrift = 1e-6;
    policy.emergencyCheckpoint = false;
    simulation.attachHealthMonitor(policy);
    simulation.run(2, TRT::fromOmegaAndMagic(1.4));

    // Simulate a broken boundary handling: scale every PDF up by 1% — the
    // total mass drifts far beyond the bound while staying finite.
    lbm::PdfField& pdf = simulation.pdfField(0);
    for (std::size_t i = 0; i < pdf.allocCells(); ++i) pdf.data()[i] *= real_c(1.01);
    try {
        simulation.run(2, TRT::fromOmegaAndMagic(1.4));
        FAIL() << "expected HealthError";
    } catch (const sim::HealthError& e) {
        EXPECT_FALSE(e.report.ok);
        EXPECT_EQ(e.report.nonFiniteCells, 0u);
        EXPECT_GT(std::abs(e.report.drift), 1e-6);
    }
}

TEST(HealthMonitorTest, VerdictIsIdenticalOnAllRanks) {
    // The violation verdict derives from allreduced values only, so every
    // rank of a 4-rank world throws HealthError together — no rank keeps
    // stepping a diverged lattice.
    auto setup = makeCavitySetup(4);
    auto flagInit = cavityFlags(4);
    std::atomic<int> threw{0};
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        sim::HealthPolicy policy;
        policy.checkEvery = 2;
        policy.emergencyCheckpoint = false;
        simulation.attachHealthMonitor(policy);
        simulation.run(2, TRT::fromOmegaAndMagic(1.4));
        if (comm.rank() == 2) // only ONE rank's lattice diverges
            simulation.pdfField(0).get(4, 4, 4, 0) = std::nan("");
        try {
            simulation.run(2, TRT::fromOmegaAndMagic(1.4));
        } catch (const sim::HealthError& e) {
            EXPECT_GE(e.report.nonFiniteCells, 1u);
            ++threw;
        }
    });
    EXPECT_EQ(threw.load(), 4);
}

// ---- acceptance: kill a rank, restart from the checkpoint ------------------

TEST(FaultDrill, KilledRankTerminatesTheWorldStructurally) {
    // 4-rank run, rank 2 dies at step 12 (after the step-10 checkpoint).
    // Every surviving rank must terminate with a structured CommError —
    // deadline miss or the kill itself — instead of hanging.
    const std::string ckpt = testing::TempDir() + "/walb_drill.wckp";
    std::remove(ckpt.c_str());
    auto setup = makeCavitySetup(4);
    auto flagInit = cavityFlags(4);
    const TRT op = TRT::fromOmegaAndMagic(1.4);

    vmpi::FaultPlan plan;
    plan.killRank = 2;
    plan.killAtStep = 12;

    std::atomic<int> structured{0};
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(2000ms);
        sim::DistributedSimulation simulation(faulty, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        simulation.setPreStepCallback(
            [&](std::uint64_t step) { faulty.beginStep(step); });
        sim::CheckpointOptions opt;
        opt.every = 5;
        opt.path = ckpt;
        try {
            sim::runWithCheckpoints(simulation, opt, 20, op);
            ADD_FAILURE() << "rank " << comm.rank() << " finished despite the kill";
        } catch (const vmpi::CommError& e) {
            EXPECT_TRUE(e.kind == vmpi::CommError::Kind::RankKilled ||
                        e.kind == vmpi::CommError::Kind::DeadlineExceeded)
                << e.what();
            ++structured;
        }
    });
    // All four ranks saw a structured failure (no hang: the launch returned).
    EXPECT_EQ(structured.load(), 4);

    // The step-10 checkpoint survived the crash.
    sim::CheckpointHeader h;
    std::string err;
    ASSERT_TRUE(sim::checkpointPeek(ckpt, h, &err)) << err;
    EXPECT_EQ(h.step, 10u);

    // Reference: the uninterrupted 20-step run.
    std::uint64_t wantDigest = 0;
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        simulation.run(20, op);
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) wantDigest = d;
    });

    // Relaunch from the surviving checkpoint and finish the run: the
    // resumed trajectory must be bit-exact.
    std::uint64_t gotDigest = 0;
    vmpi::ThreadCommWorld::launch(4, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        sim::CheckpointOptions opt;
        opt.restartFrom = ckpt;
        const std::uint64_t executed = sim::runWithCheckpoints(simulation, opt, 20, op);
        EXPECT_EQ(executed, 10u);
        EXPECT_EQ(simulation.currentStep(), 20u);
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) gotDigest = d;
    });
    EXPECT_EQ(gotDigest, wantDigest);
    std::remove(ckpt.c_str());
}

} // namespace
} // namespace walb
