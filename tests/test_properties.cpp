/// Randomized property tests over the core abstractions: serialization
/// round trips for arbitrary values, geometric identities of CellInterval
/// and AABB under random boxes, and monotonicity properties of the
/// performance models.

#include <gtest/gtest.h>

#include "core/AABB.h"
#include "core/Buffer.h"
#include "core/Cell.h"
#include "core/Random.h"
#include "perf/Scaling.h"

namespace walb {
namespace {

TEST(BufferProperty, CompactRoundTripForAllWidths) {
    Random rng(17);
    for (unsigned width = 1; width <= 8; ++width) {
        const std::uint64_t maxValue =
            width == 8 ? ~0ull : ((1ull << (8 * width)) - 1);
        SendBuffer sb;
        std::vector<std::uint64_t> values;
        for (int i = 0; i < 64; ++i) {
            // Bias toward boundary values where truncation bugs live.
            std::uint64_t v;
            switch (rng.uniformInt(4)) {
                case 0: v = 0; break;
                case 1: v = maxValue; break;
                case 2: v = maxValue >> 1; break;
                default:
                    v = width == 8 ? rng.nextU64() : rng.nextU64() & maxValue;
            }
            values.push_back(v);
            sb.putCompact(v, width);
        }
        EXPECT_EQ(sb.size(), 64u * width);
        RecvBuffer rb(sb.release());
        for (std::uint64_t v : values) EXPECT_EQ(rb.getCompact(width), v) << "width " << width;
    }
}

TEST(BufferProperty, MixedStreamRoundTrip) {
    Random rng(23);
    for (int trial = 0; trial < 20; ++trial) {
        SendBuffer sb;
        const auto i32 = std::int32_t(rng.nextU64());
        const auto u16 = std::uint16_t(rng.nextU64());
        const double d = rng.uniform(-1e10, 1e10);
        const auto f = float(rng.uniform(-10, 10));
        std::vector<double> vec(rng.uniformInt(20));
        for (auto& v : vec) v = rng.uniform(-1, 1);
        sb << i32 << u16 << d << f << vec;
        RecvBuffer rb(sb.release());
        std::int32_t i32b;
        std::uint16_t u16b;
        double db;
        float fb;
        std::vector<double> vecb;
        rb >> i32b >> u16b >> db >> fb >> vecb;
        EXPECT_EQ(i32b, i32);
        EXPECT_EQ(u16b, u16);
        EXPECT_EQ(db, d);
        EXPECT_EQ(fb, f);
        EXPECT_EQ(vecb, vec);
        EXPECT_TRUE(rb.atEnd());
    }
}

CellInterval randomInterval(Random& rng) {
    const cell_idx_t x0 = cell_idx_t(rng.uniformInt(20)) - 10;
    const cell_idx_t y0 = cell_idx_t(rng.uniformInt(20)) - 10;
    const cell_idx_t z0 = cell_idx_t(rng.uniformInt(20)) - 10;
    return {x0, y0, z0, x0 + cell_idx_t(rng.uniformInt(8)), y0 + cell_idx_t(rng.uniformInt(8)),
            z0 + cell_idx_t(rng.uniformInt(8))};
}

TEST(CellIntervalProperty, IntersectionIsContainedInBoth) {
    Random rng(31);
    for (int trial = 0; trial < 200; ++trial) {
        const CellInterval a = randomInterval(rng), b = randomInterval(rng);
        const CellInterval i = a.intersect(b);
        if (i.empty()) {
            // Disjointness: no cell of a lies in b.
            bool overlap = false;
            a.forEach([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
                if (b.contains(Cell{x, y, z})) overlap = true;
            });
            EXPECT_FALSE(overlap);
        } else {
            EXPECT_TRUE(a.contains(i));
            EXPECT_TRUE(b.contains(i));
            // Every cell in both is in the intersection.
            a.forEach([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
                const Cell c{x, y, z};
                EXPECT_EQ(i.contains(c), b.contains(c));
            });
        }
    }
}

TEST(CellIntervalProperty, NumCellsMatchesForEachCount) {
    Random rng(37);
    for (int trial = 0; trial < 100; ++trial) {
        const CellInterval ci = randomInterval(rng);
        uint_t count = 0;
        ci.forEach([&](cell_idx_t, cell_idx_t, cell_idx_t) { ++count; });
        EXPECT_EQ(count, ci.numCells());
    }
}

TEST(AabbProperty, SqrDistanceIsZeroIffInsideClosed) {
    Random rng(41);
    for (int trial = 0; trial < 300; ++trial) {
        const Vec3 lo(rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5));
        const AABB box(lo, lo + Vec3(rng.uniform(0.1, 4), rng.uniform(0.1, 4),
                                     rng.uniform(0.1, 4)));
        const Vec3 p(rng.uniform(-8, 8), rng.uniform(-8, 8), rng.uniform(-8, 8));
        const bool inside = box.containsClosed(p);
        EXPECT_EQ(box.sqrDistance(p) == 0.0, inside) << "p=" << p << " box=" << box;
    }
}

TEST(AabbProperty, OctantsPartitionTheBox) {
    Random rng(43);
    for (int trial = 0; trial < 100; ++trial) {
        const Vec3 lo(rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5));
        const AABB box(lo, lo + Vec3(rng.uniform(0.5, 4), rng.uniform(0.5, 4),
                                     rng.uniform(0.5, 4)));
        const Vec3 p = box.min() + Vec3(rng.uniform(0, 1) * box.xSize(),
                                        rng.uniform(0, 1) * box.ySize(),
                                        rng.uniform(0, 1) * box.zSize());
        // Half-open octants: exactly one octant contains any interior point.
        int containing = 0;
        for (unsigned c = 0; c < 8; ++c)
            if (box.octant(c).contains(p)) ++containing;
        if (box.contains(p)) { EXPECT_EQ(containing, 1) << p; }
    }
}

TEST(ModelProperty, EcmIsMonotoneInCoresAndTier) {
    using namespace perf;
    for (const auto& machine : {superMUCSocket(), juqueenNode()}) {
        const EcmModel simd(machine, KernelTier::Simd);
        for (unsigned c = 1; c < machine.coresPerChip; ++c)
            EXPECT_LE(simd.predictMLUPS(c), simd.predictMLUPS(c + 1) + 1e-12);
        EXPECT_LE(simd.predictMLUPS(machine.coresPerChip),
                  rooflineMLUPS(machine.usableBandwidthGiBs) + 1e-9);
    }
}

TEST(ModelProperty, CommTimeIsMonotoneInBytesAndScale) {
    using namespace perf;
    const ScalingModel model(superMUCSocket(), prunedTreeNetwork());
    double last = 0;
    for (double bytes : {1e3, 1e5, 1e7, 1e9}) {
        const double t = model.commSeconds(bytes, 18, 16, 4096);
        EXPECT_GT(t, last);
        last = t;
    }
    // Crossing island boundaries never makes communication cheaper.
    EXPECT_GE(model.commSeconds(1e6, 18, 16, 1u << 17),
              model.commSeconds(1e6, 18, 16, 1u << 12));
}

TEST(ModelProperty, WeakScalingStepTimeDecomposes) {
    using namespace perf;
    const ScalingModel model(juqueenNode(), torusNetwork());
    const auto p = model.weakScalingDense(1u << 10, {64, 1}, 1.728e6);
    // mpiFraction and timeStepsPerSecond must be consistent:
    // comm = fraction / stepsPerSecond.
    const double step = 1.0 / p.timeStepsPerSecond;
    const double comm = model.commSeconds(cubeGhostBytes(std::cbrt(1.728e6)), 18, 64,
                                          1u << 10);
    EXPECT_NEAR(p.mpiFraction, comm / step, 1e-9);
}

} // namespace
} // namespace walb
