/// Tests for the weak/strong scaling partitioning searches of paper §2.3.

#include <gtest/gtest.h>

#include "blockforest/ScalingSetup.h"
#include "geometry/CoronaryTree.h"

namespace walb::bf {
namespace {

std::unique_ptr<geometry::DistanceFunction> testTree() {
    geometry::CoronaryTreeParams params;
    params.seed = 11;
    params.bounds = AABB(0, 0, 0, 1, 1, 1);
    params.rootRadius = 0.05;
    params.minRadius = 0.012;
    params.maxDepth = 8;
    return geometry::CoronaryTree::generate(params).implicitDistance();
}

TEST(ScalingSetup, ConfigForBlockGridCoversBbox) {
    const AABB bbox(0, 0, 0, 1.0, 0.6, 0.3);
    const SetupConfig cfg = configForBlockGrid(bbox, 10, 16);
    EXPECT_EQ(cfg.rootBlocksX, 10u);
    EXPECT_EQ(cfg.rootBlocksY, 6u);
    EXPECT_EQ(cfg.rootBlocksZ, 3u);
    EXPECT_GE(cfg.domain.xSize(), bbox.xSize() - 1e-12);
    EXPECT_GE(cfg.domain.ySize(), bbox.ySize() - 1e-12);
    // Cubic cells: dx equal along all axes by construction.
    EXPECT_NEAR(cfg.dx(), 0.1 / 16.0, 1e-12);
}

TEST(ScalingSetup, WeakSearchHitsTargetFromBelow) {
    const auto phi = testTree();
    for (uint_t target : {16u, 64u, 256u}) {
        const auto result = findWeakScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1), 8, target);
        EXPECT_LE(result.blocks, target);
        EXPECT_GT(result.blocks, target / 4) << "search landed far below the target";
        EXPECT_EQ(result.forest.numBlocks(), result.blocks);
        EXPECT_GT(result.dx, 0.0);
    }
}

TEST(ScalingSetup, WeakSearchRefinesResolutionWithMoreBlocks) {
    const auto phi = testTree();
    const auto coarse = findWeakScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1), 8, 32);
    const auto fine = findWeakScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1), 8, 512);
    EXPECT_LT(fine.dx, coarse.dx); // weak scaling: more blocks = finer resolution
}

TEST(ScalingSetup, StrongSearchKeepsDxFixed) {
    const auto phi = testTree();
    const real_t dx = 1.0 / 256.0;
    const auto few = findStrongScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1), dx, 32, 4, 128);
    const auto many =
        findStrongScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1), dx, 512, 4, 128);
    EXPECT_LE(few.blocks, 32u);
    EXPECT_LE(many.blocks, 512u);
    EXPECT_GT(many.blocks, few.blocks);
    // More blocks at fixed dx means smaller block edges.
    EXPECT_LT(many.blockEdgeCells, few.blockEdgeCells);
    EXPECT_DOUBLE_EQ(few.dx, dx);
    EXPECT_DOUBLE_EQ(many.dx, dx);
}

TEST(ScalingSetup, StrongSearchBlocksAreCubes) {
    const auto phi = testTree();
    const auto result =
        findStrongScalingPartition(*phi, AABB(0, 0, 0, 1, 1, 1), 1.0 / 128.0, 64, 4, 128);
    const auto& cfg = result.forest.config();
    EXPECT_EQ(cfg.cellsPerBlockX, cfg.cellsPerBlockY);
    EXPECT_EQ(cfg.cellsPerBlockY, cfg.cellsPerBlockZ);
    EXPECT_EQ(cfg.cellsPerBlockX, result.blockEdgeCells);
}

} // namespace
} // namespace walb::bf
