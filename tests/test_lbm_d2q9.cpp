/// D2Q9 end-to-end tests: the generic templated pipeline (kernel, boundary
/// handling, periodic copies) must deliver correct 2-D physics — Couette
/// profile, uniform translation invariance, and mass conservation.

#include <gtest/gtest.h>

#include "lbm/Boundary.h"
#include "lbm/Communication.h"
#include "lbm/KernelGeneric.h"

namespace walb::lbm {
namespace {

using M = D2Q9;

TEST(D2Q9, UniformTranslationIsInvariant) {
    // A fully periodic uniform flow is an exact fixed point (Galilean
    // invariance of the discrete equilibrium under lattice-aligned shift).
    PdfField src = makePdfField<M>(12, 12, 1);
    PdfField dst = makePdfField<M>(12, 12, 1);
    const Vec3 u(0.05, -0.03, 0);
    initEquilibrium<M>(src, 1.0, u);
    const SRT op(1.3);
    for (int step = 0; step < 50; ++step) {
        // D2Q9 never moves in z; wrap only the in-plane directions.
        for (const auto& d : neighborhood26)
            if (d[2] == 0) copyPdfsLocal<M>(src, src, d);
        streamCollideGeneric<M>(src, dst, op);
        src.swapDataWith(dst);
    }
    const Vec3 result = cellVelocity<M>(src, 6, 6, 0);
    EXPECT_NEAR(result[0], u[0], 1e-14);
    EXPECT_NEAR(result[1], u[1], 1e-14);
    EXPECT_NEAR(cellDensity<M>(src, 3, 9, 0), 1.0, 1e-13);
}

TEST(D2Q9, CouetteProfileThroughGenericPipeline) {
    const cell_idx_t H = 10, NX = 6;
    field::FlagField flags(NX, H + 2, 1, 1);
    const auto masks = BoundaryFlags::registerOn(flags);
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == 0) flags.addFlag(x, y, z, masks.noSlip);
        else if (y == H + 1) flags.addFlag(x, y, z, masks.ubb);
        else flags.addFlag(x, y, z, masks.fluid);
    });
    // Periodic in x: wrap flags so wall links crossing the seam exist.
    for (const auto& d : neighborhood26)
        if (d[1] == 0 && d[2] == 0) copySliceLocal(flags, flags, d);

    PdfField src = makePdfField<M>(NX, H + 2, 1);
    PdfField dst = makePdfField<M>(NX, H + 2, 1);
    initEquilibrium<M>(src, 1.0, {0, 0, 0});
    initEquilibrium<M>(dst, 1.0, {0, 0, 0});

    BoundaryHandling<M> boundary(flags, masks);
    const real_t U = 0.02;
    boundary.setWallVelocity({U, 0, 0});
    const auto op = TRT::fromOmegaAndMagic(1.2);
    for (int step = 0; step < 3000; ++step) {
        for (const auto& d : neighborhood26)
            if (d[1] == 0 && d[2] == 0) copyPdfsLocal<M>(src, src, d);
        boundary.apply(src);
        streamCollideGeneric<M>(src, dst, op, &flags, masks.fluid);
        src.swapDataWith(dst);
    }
    for (cell_idx_t j = 1; j <= H; ++j) {
        const real_t expected = U * (real_c(j) - real_c(0.5)) / real_c(H);
        EXPECT_NEAR(cellVelocity<M>(src, 2, j, 0)[0], expected, 1e-7) << "row " << j;
    }
}

TEST(D2Q9, MassConservedInClosedBox) {
    const cell_idx_t N = 12;
    field::FlagField flags(N, N, 1, 1);
    const auto masks = BoundaryFlags::registerOn(flags);
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (x == 0 || x == N - 1 || y == 0 || y == N - 1)
            flags.addFlag(x, y, z, masks.noSlip);
        else flags.addFlag(x, y, z, masks.fluid);
    });
    PdfField src = makePdfField<M>(N, N, 1);
    PdfField dst = makePdfField<M>(N, N, 1);
    initEquilibrium<M>(src, 1.0, {0.01, 0.02, 0});
    BoundaryHandling<M> boundary(flags, masks);
    auto mass = [&] {
        real_t m = 0;
        flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            if (flags.get(x, y, z) & masks.fluid) m += cellDensity<M>(src, x, y, z);
        });
        return m;
    };
    const real_t m0 = mass();
    const SRT op(1.1);
    for (int step = 0; step < 300; ++step) {
        boundary.apply(src);
        streamCollideGeneric<M>(src, dst, op, &flags, masks.fluid);
        src.swapDataWith(dst);
    }
    EXPECT_NEAR(mass(), m0, 1e-10 * m0);
}

} // namespace
} // namespace walb::lbm
