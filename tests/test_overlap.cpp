/// Tests for the communication-hiding overlap schedule: core/shell split
/// invariants on random flag fields, fast-vs-naive fluid-run construction,
/// layout independence of the ghost wire format (contiguous fast path vs
/// per-cell fallback), the BufferSystem split exchange and its steady-state
/// buffer recycling, FIFO + serialization of the FaultyComm slow-link model,
/// and the headline property: the overlapped schedule is bit-exact with the
/// synchronous one on random voxelized geometries across 1-8 virtual ranks,
/// including across a live migration and under injected message latency.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "core/Random.h"
#include "lbm/Communication.h"
#include "lbm/Sparse.h"
#include "rebalance/Migrator.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/BufferSystem.h"
#include "vmpi/FaultyComm.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using lbm::TRT;
using namespace std::chrono_literals;

// ---- shared helpers --------------------------------------------------------

/// splitmix64 of the cell coordinates: a pure function of global position,
/// as the flag-initializer contract requires (blocks re-derive their flags
/// after a migration).
std::uint64_t cellHash(std::uint64_t seed, cell_idx_t x, cell_idx_t y, cell_idx_t z) {
    std::uint64_t h = seed ^ (std::uint64_t(std::uint32_t(x)) << 42) ^
                      (std::uint64_t(std::uint32_t(y)) << 21) ^
                      std::uint64_t(std::uint32_t(z));
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

std::set<std::tuple<cell_idx_t, cell_idx_t, cell_idx_t>> runCells(
    const lbm::FluidRunList& list) {
    std::set<std::tuple<cell_idx_t, cell_idx_t, cell_idx_t>> cells;
    for (const auto& r : list.runs)
        for (cell_idx_t x = r.xBegin; x <= r.xEnd; ++x)
            cells.insert({x, r.y, r.z});
    return cells;
}

/// Random porous flag field: every interior cell is fluid with ~70%
/// probability (the rest stays unflagged, i.e. solid).
field::FlagField randomFlags(cell_idx_t n, std::uint64_t seed, field::flag_t& fluid) {
    field::FlagField flags(n, n, n, 1);
    fluid = flags.registerFlag(lbm::kFluidFlag);
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (cellHash(seed, x, y, z) % 10 < 7) flags.addFlag(x, y, z, fluid);
    });
    return flags;
}

// ---- core/shell split invariants -------------------------------------------

TEST(CoreShellSplitTest, RunsAreDisjointAndCoverInputOnRandomFields) {
    constexpr cell_idx_t n = 12;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        field::flag_t fluid = 0;
        const auto flags = randomFlags(n, seed, fluid);
        const auto all = lbm::buildFluidRuns(flags, fluid);

        // Random remote-ghost mask (each of the 26 regions independently).
        std::array<bool, 26> remote{};
        for (std::size_t i = 0; i < 26; ++i)
            remote[i] = cellHash(seed * 31 + i, 0, 0, 0) & 1;

        const auto split = lbm::splitFluidRuns<lbm::D3Q19>(all, n, n, n, remote);
        EXPECT_EQ(split.core.fluidCells + split.shell.fluidCells, all.fluidCells);

        const auto coreCells = runCells(split.core);
        const auto shellCells = runCells(split.shell);
        const auto allCells = runCells(all);
        EXPECT_EQ(coreCells.size() + shellCells.size(), allCells.size());
        for (const auto& c : coreCells) {
            EXPECT_TRUE(allCells.count(c));
            EXPECT_FALSE(shellCells.count(c));
        }
        for (const auto& c : shellCells) EXPECT_TRUE(allCells.count(c));

        // The cell-list split must partition identically.
        std::vector<Cell> cells;
        for (const auto& [x, y, z] : allCells) cells.push_back({x, y, z});
        const auto cellSplit =
            lbm::splitFluidCellList<lbm::D3Q19>(cells, n, n, n, remote);
        std::set<std::tuple<cell_idx_t, cell_idx_t, cell_idx_t>> coreFromCells,
            shellFromCells;
        for (const auto& c : cellSplit.core) coreFromCells.insert({c.x, c.y, c.z});
        for (const auto& c : cellSplit.shell) shellFromCells.insert({c.x, c.y, c.z});
        EXPECT_EQ(coreFromCells, coreCells);
        EXPECT_EQ(shellFromCells, shellCells);
    }
}

TEST(CoreShellSplitTest, NoRemoteGhostsMeansEverythingIsCore) {
    field::flag_t fluid = 0;
    const auto flags = randomFlags(10, 7, fluid);
    const auto all = lbm::buildFluidRuns(flags, fluid);
    const auto split = lbm::splitFluidRuns<lbm::D3Q19>(all, 10, 10, 10, {});
    EXPECT_EQ(split.shell.fluidCells, 0u);
    EXPECT_EQ(split.core.fluidCells, all.fluidCells);
}

// ---- fluid-run construction fast path --------------------------------------

TEST(BuildFluidRunsTest, RowPointerFastPathMatchesNaive) {
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        field::flag_t fluid = 0;
        const auto flags = randomFlags(14, seed, fluid);
        const auto fast = lbm::buildFluidRuns(flags, fluid);
        const auto naive = lbm::buildFluidRunsNaive(flags, fluid);
        ASSERT_EQ(fast.runs.size(), naive.runs.size());
        EXPECT_EQ(fast.fluidCells, naive.fluidCells);
        for (std::size_t i = 0; i < fast.runs.size(); ++i) {
            EXPECT_EQ(fast.runs[i].y, naive.runs[i].y);
            EXPECT_EQ(fast.runs[i].z, naive.runs[i].z);
            EXPECT_EQ(fast.runs[i].xBegin, naive.runs[i].xBegin);
            EXPECT_EQ(fast.runs[i].xEnd, naive.runs[i].xEnd);
        }
    }
}

// ---- ghost wire format: layout independence --------------------------------

/// The packed byte stream must not depend on the field's memory layout:
/// fzyx takes the contiguous-row memcpy fast path, zyxf the per-cell
/// fallback — same wire bytes, and unpacking into either layout produces
/// the same logical ghost values.
TEST(GhostWireFormatTest, PackBytesAndUnpackAreLayoutIndependent) {
    constexpr cell_idx_t n = 6;
    auto fill = [](lbm::PdfField& f) {
        for (cell_idx_t z = -1; z <= n; ++z)
            for (cell_idx_t y = -1; y <= n; ++y)
                for (cell_idx_t x = -1; x <= n; ++x)
                    for (uint_t q = 0; q < lbm::D3Q19::Q; ++q)
                        f.get(x, y, z, cell_idx_c(q)) =
                            real_c(x + 10 * y + 100 * z + 1000 * cell_idx_c(q));
    };
    lbm::PdfField soa(n, n, n, lbm::D3Q19::Q, field::Layout::fzyx, real_c(0), 1);
    lbm::PdfField aos(n, n, n, lbm::D3Q19::Q, field::Layout::zyxf, real_c(0), 1);
    fill(soa);
    fill(aos);

    for (const auto& d : lbm::neighborhood26) {
        for (bool full : {false, true}) {
            SendBuffer sbSoa, sbAos;
            lbm::packPdfs<lbm::D3Q19>(soa, d, sbSoa, full);
            lbm::packPdfs<lbm::D3Q19>(aos, d, sbAos, full);
            ASSERT_EQ(sbSoa.size(), sbAos.size());
            // D3Q19 corner directions pack zero PDFs; memcmp on the empty
            // buffers' null data() would be UB.
            if (sbSoa.size() != 0) {
                EXPECT_EQ(std::memcmp(sbSoa.data(), sbAos.data(), sbSoa.size()), 0)
                    << "dir (" << d[0] << "," << d[1] << "," << d[2]
                    << ") full=" << full;
            }

            // Unpack the same bytes into both layouts; ghost slices must
            // carry identical logical values afterwards.
            const std::array<int, 3> inv = {-d[0], -d[1], -d[2]};
            lbm::PdfField dstSoa(n, n, n, lbm::D3Q19::Q, field::Layout::fzyx,
                                 real_c(-1), 1);
            lbm::PdfField dstAos(n, n, n, lbm::D3Q19::Q, field::Layout::zyxf,
                                 real_c(-1), 1);
            RecvBuffer rb1(std::vector<std::uint8_t>(sbSoa.data(),
                                                     sbSoa.data() + sbSoa.size()));
            RecvBuffer rb2(std::vector<std::uint8_t>(sbSoa.data(),
                                                     sbSoa.data() + sbSoa.size()));
            lbm::unpackPdfs<lbm::D3Q19>(dstSoa, inv, rb1, full);
            lbm::unpackPdfs<lbm::D3Q19>(dstAos, inv, rb2, full);
            for (cell_idx_t z = -1; z <= n; ++z)
                for (cell_idx_t y = -1; y <= n; ++y)
                    for (cell_idx_t x = -1; x <= n; ++x)
                        for (uint_t q = 0; q < lbm::D3Q19::Q; ++q)
                            ASSERT_EQ(dstSoa.get(x, y, z, cell_idx_c(q)),
                                      dstAos.get(x, y, z, cell_idx_c(q)));
        }
    }
}

TEST(GhostWireFormatTest, TruncatedPayloadRaisesBufferError) {
    constexpr cell_idx_t n = 6;
    lbm::PdfField f(n, n, n, lbm::D3Q19::Q, field::Layout::fzyx, real_c(1), 1);
    SendBuffer sb;
    const std::array<int, 3> east = {1, 0, 0};
    lbm::packPdfs<lbm::D3Q19>(f, east, sb, false);
    std::vector<std::uint8_t> bytes(sb.data(), sb.data() + sb.size() / 2);
    RecvBuffer rb(std::move(bytes));
    EXPECT_THROW(lbm::unpackPdfs<lbm::D3Q19>(f, {-1, 0, 0}, rb, false), BufferError);
}

// ---- BufferSystem split exchange and recycling ------------------------------

TEST(BufferSystemTest, SplitExchangeDrainsViaProgressAndFinish) {
    vmpi::SerialComm comm;
    vmpi::BufferSystem bs(comm, /*tag=*/5);
    bs.setReceiverInfo({0});

    bs.sendBuffer(0) << std::uint32_t(0xfeedbeef);
    EXPECT_FALSE(bs.exchangeInProgress());
    bs.beginExchange();
    EXPECT_TRUE(bs.exchangeInProgress());
    EXPECT_EQ(bs.pendingReceives(), 1u);

    std::uint32_t got = 0;
    EXPECT_EQ(bs.progress([&](int, RecvBuffer& buf) { buf >> got; }), 1u);
    EXPECT_EQ(got, 0xfeedbeefu);
    EXPECT_FALSE(bs.exchangeInProgress());
    bs.finishExchange([](int, RecvBuffer&) { FAIL() << "nothing left to drain"; });
}

TEST(BufferSystemTest, SteadyStateExchangePerformsNoAllocations) {
    vmpi::SerialComm comm;
    vmpi::BufferSystem bs(comm, /*tag=*/6);
    bs.setReceiverInfo({0});
    const std::vector<std::uint8_t> payload(4096, 0x5a);
    auto round = [&] {
        bs.sendBuffer(0).putBytes(payload.data(), payload.size());
        bs.beginExchange();
        bs.finishExchange([](int, RecvBuffer& buf) { buf.skip(buf.remaining()); });
    };
    round(); // sizes the buffer
    const std::uint64_t allocs = bs.sendBufferAllocations();
    for (int i = 0; i < 20; ++i) round();
    EXPECT_EQ(bs.sendBufferAllocations(), allocs)
        << "steady-state exchange must recycle buffers, not allocate";
    EXPECT_EQ(bs.cumulativeRecvMessages(), 21u);
}

// ---- FaultyComm slow-link model ---------------------------------------------

TEST(SlowLinkTest, SerialLinkPreservesFifoAndSerializesTransmissions) {
    constexpr int kMessages = 5;
    constexpr auto kLatency = 2ms;
    std::atomic<bool> orderOk{true};
    std::atomic<long> drainMicros{0};

    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        if (comm.rank() == 0) {
            const vmpi::FaultPlan noFaults;
            vmpi::FaultyComm slow(comm, noFaults);
            slow.setMessageLatency(kLatency);
            const auto t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kMessages; ++i)
                slow.send(1, /*tag=*/3, {std::uint8_t(i)});
            slow.flushLatent();
            drainMicros = long(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count());
        } else {
            for (int i = 0; i < kMessages; ++i) {
                const auto data = comm.recv(0, /*tag=*/3);
                if (data.size() != 1 || data[0] != std::uint8_t(i)) orderOk = false;
            }
        }
    });
    EXPECT_TRUE(orderOk.load()) << "slow link reordered same-tag messages";
    // Store-and-forward: a burst of N messages occupies the link for at
    // least N x latency (lower bound only — upper bounds are not portable
    // to a loaded CI host).
    EXPECT_GE(drainMicros.load(), kMessages * 2000 - 500);
}

// ---- overlap == synchronous (the headline property) -------------------------

/// Random voxelized geometry: moving lid on top, walls on the remaining
/// domain faces, interior cells solid with ~12% probability. A pure
/// function of global position and the seed.
sim::DistributedSimulation::FlagInitializer voxelFlags(cell_idx_t NX, cell_idx_t NY,
                                                       cell_idx_t NZ,
                                                       std::uint64_t seed) {
    return [=](field::FlagField& flags, const lbm::BoundaryFlags& masks,
               const bf::BlockForest::Block&, const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > real_c(NX) ||
                p[1] > real_c(NY) || p[2] > real_c(NZ))
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.z == NZ - 1) flags.addFlag(x, y, z, masks.ubb);
            else if (g.x == 0 || g.x == NX - 1 || g.y == 0 || g.y == NY - 1 ||
                     g.z == 0)
                flags.addFlag(x, y, z, masks.noSlip);
            else if (cellHash(seed, g.x, g.y, g.z) % 8 == 0)
                flags.addFlag(x, y, z, masks.noSlip); // random obstacle voxel
            else
                flags.addFlag(x, y, z, masks.fluid);
        });
    };
}

/// Runs `steps` on `ranks` virtual ranks and returns the collective state
/// digest; optionally with the overlapped schedule and a per-message
/// slow-link latency on every rank.
std::uint64_t runDigest(std::uint32_t blocksX, std::uint32_t ranks, uint_t steps,
                        std::uint64_t seed, bool overlap,
                        std::chrono::microseconds latency = 0us) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8.0 * blocksX, 8, 8);
    cfg.rootBlocksX = blocksX;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    const auto flagInit = voxelFlags(8 * cell_idx_c(blocksX), 8, 8, seed);

    std::atomic<std::uint64_t> digest{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        const vmpi::FaultPlan noFaults;
        vmpi::FaultyComm slowLink(comm, noFaults);
        vmpi::Comm* active = &comm;
        if (latency.count() > 0) {
            slowLink.setMessageLatency(latency);
            active = &slowLink;
        }
        sim::DistributedSimulation simulation(*active, setup, flagInit);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setOverlapCommunication(overlap);
        simulation.run(steps, TRT::fromOmegaAndMagic(1.6));
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) digest = d;
    });
    return digest.load();
}

TEST(OverlapScheduleTest, MatchesSynchronousOnRandomGeometries) {
    // (blocksX, ranks) covering 1 rank (no remote neighbors at all), partial
    // and full distribution; a different random geometry for each.
    const struct {
        std::uint32_t blocksX, ranks;
        std::uint64_t seed;
    } cases[] = {{2, 1, 101}, {4, 2, 202}, {4, 4, 303}, {8, 8, 404}};
    for (const auto& c : cases) {
        const std::uint64_t sync = runDigest(c.blocksX, c.ranks, 6, c.seed, false);
        const std::uint64_t over = runDigest(c.blocksX, c.ranks, 6, c.seed, true);
        EXPECT_EQ(over, sync) << "blocksX=" << c.blocksX << " ranks=" << c.ranks;
    }
}

TEST(OverlapScheduleTest, StaysBitExactUnderInjectedLatency) {
    const std::uint64_t sync = runDigest(4, 4, 5, 555, false);
    const std::uint64_t overLatent = runDigest(4, 4, 5, 555, true, 1ms);
    EXPECT_EQ(overLatent, sync)
        << "slow-link latency must shift timing only, never results";
}

TEST(OverlapScheduleTest, SurvivesLiveMigrationMidRun) {
    const std::uint32_t ranks = 4;
    const std::uint64_t seed = 777;
    // Reference: 8 uninterrupted synchronous steps.
    const std::uint64_t want = runDigest(ranks, ranks, 8, seed, false);

    // Overlapped run with every block rotated to the next rank after step 4:
    // the migration must rebuild the core/shell sweep plans on both the
    // shrinking and the growing rank.
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8.0 * ranks, 8, 8);
    cfg.rootBlocksX = ranks;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    const auto flagInit = voxelFlags(8 * cell_idx_c(ranks), 8, 8, seed);

    std::atomic<std::uint64_t> got{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setOverlapCommunication(true);
        const TRT op = TRT::fromOmegaAndMagic(1.6);
        simulation.run(4, op);

        std::vector<std::uint32_t> rotated;
        for (const auto& b : simulation.setup().blocks())
            rotated.push_back((b.process + 1) % ranks);
        const auto stats = rebalance::migrate(simulation, rotated);
        EXPECT_EQ(stats.blocksMoved, std::size_t(ranks));

        simulation.run(4, op);
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) got = d;
    });
    EXPECT_EQ(got.load(), want);
}

TEST(OverlapScheduleTest, ReportsHiddenAndExposedGauges) {
    const std::uint32_t ranks = 2;
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 16, 8, 8);
    cfg.rootBlocksX = 2;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    const auto flagInit = voxelFlags(16, 8, 8, 999);

    std::atomic<int> ok{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setOverlapCommunication(true);
        simulation.run(4, TRT::fromOmegaAndMagic(1.6));
        auto& m = simulation.metrics();
        const double exposed = m.gauge("comm.exposed_seconds").value();
        const double hidden = m.gauge("comm.hidden_seconds").value();
        const double fraction = m.gauge("comm.hidden_fraction").value();
        if (exposed > 0.0 && hidden >= 0.0 && fraction >= 0.0 && fraction <= 1.0)
            ++ok;
    });
    EXPECT_EQ(ok.load(), int(ranks));
}

} // namespace
} // namespace walb
