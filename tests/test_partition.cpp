/// Tests for the METIS-substitute graph partitioner: balance, cut quality
/// on structured graphs, determinism, and degenerate inputs.

#include <gtest/gtest.h>

#include "partition/Partitioner.h"

namespace walb::partition {
namespace {

/// 3-D grid graph of blocks with face edges (the shape of real block
/// communication graphs).
Graph gridGraph(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz,
                std::uint64_t edgeWeight = 1) {
    Graph g(std::size_t(nx) * ny * nz);
    auto id = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
        return (z * ny + y) * nx + x;
    };
    for (std::uint32_t z = 0; z < nz; ++z)
        for (std::uint32_t y = 0; y < ny; ++y)
            for (std::uint32_t x = 0; x < nx; ++x) {
                if (x + 1 < nx) g.addEdge(id(x, y, z), id(x + 1, y, z), edgeWeight);
                if (y + 1 < ny) g.addEdge(id(x, y, z), id(x, y + 1, z), edgeWeight);
                if (z + 1 < nz) g.addEdge(id(x, y, z), id(x, y, z + 1), edgeWeight);
            }
    g.finalize();
    return g;
}

TEST(Graph, CsrConstruction) {
    Graph g(4);
    g.addEdge(0, 1, 5);
    g.addEdge(1, 2, 7);
    g.addEdge(2, 3, 1);
    g.finalize();
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degreeEnd(1) - g.degreeBegin(1), 2u); // neighbors 0 and 2
    std::uint64_t sum = 0;
    for (std::size_t e = g.degreeBegin(1); e < g.degreeEnd(1); ++e) sum += g.edgeWeight(e);
    EXPECT_EQ(sum, 12u);
}

TEST(Graph, CutWeight) {
    Graph g(4);
    g.addEdge(0, 1, 5);
    g.addEdge(1, 2, 7);
    g.addEdge(2, 3, 1);
    g.finalize();
    EXPECT_EQ(g.cutWeight({0, 0, 1, 1}), 7u);
    EXPECT_EQ(g.cutWeight({0, 0, 0, 0}), 0u);
    EXPECT_EQ(g.cutWeight({0, 1, 0, 1}), 13u);
}

class PartitionerGrid : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionerGrid, BalancedWithinTolerance) {
    const std::uint32_t k = GetParam();
    const Graph g = gridGraph(8, 8, 8);
    PartitionOptions opt;
    opt.numParts = k;
    const PartitionResult r = partitionGraph(g, opt);
    ASSERT_EQ(r.part.size(), g.numVertices());
    for (auto p : r.part) EXPECT_LT(p, k);
    EXPECT_LE(r.imbalance, opt.imbalanceTolerance + 0.08)
        << "imbalance " << r.imbalance << " for k=" << k;
    // All parts non-empty for reasonable sizes.
    std::vector<int> used(k, 0);
    for (auto p : r.part) used[p] = 1;
    for (std::uint32_t p = 0; p < k; ++p) EXPECT_TRUE(used[p]) << "empty part " << p;
}

TEST_P(PartitionerGrid, CutFarBelowRandomAssignment) {
    const std::uint32_t k = GetParam();
    if (k == 1) GTEST_SKIP();
    const Graph g = gridGraph(8, 8, 8);
    PartitionOptions opt;
    opt.numParts = k;
    const PartitionResult r = partitionGraph(g, opt);
    // A random assignment cuts ~ (1 - 1/k) of all edges; a sane partitioner
    // should cut a small fraction of that on a grid.
    const double randomCut = double(g.numEdges()) * (1.0 - 1.0 / double(k));
    EXPECT_LT(double(r.cutWeight), 0.5 * randomCut) << "cut " << r.cutWeight;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionerGrid, ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Partitioner, TwoWayGridCutIsNearOptimal) {
    // Bisecting an 8x8x8 grid optimally cuts one 8x8 plane = 64 edges.
    const Graph g = gridGraph(8, 8, 8);
    PartitionOptions opt;
    opt.numParts = 2;
    const PartitionResult r = partitionGraph(g, opt);
    EXPECT_LE(r.cutWeight, 64u * 2) << "bisection cut far from the 64-edge optimum";
}

TEST(Partitioner, RespectsVertexWeights) {
    // A path of 10 vertices where vertex 0 carries half the total weight:
    // for k=2, vertex 0 should sit alone-ish.
    Graph g(10);
    for (std::uint32_t v = 0; v + 1 < 10; ++v) g.addEdge(v, v + 1);
    g.setVertexWeight(0, 9);
    for (std::uint32_t v = 1; v < 10; ++v) g.setVertexWeight(v, 1);
    g.finalize();
    PartitionOptions opt;
    opt.numParts = 2;
    const PartitionResult r = partitionGraph(g, opt);
    std::uint64_t w0 = 0, w1 = 0;
    for (std::uint32_t v = 0; v < 10; ++v) (r.part[v] == 0 ? w0 : w1) += g.vertexWeight(v);
    EXPECT_LE(std::max(w0, w1), 12u) << "w0=" << w0 << " w1=" << w1;
}

TEST(Partitioner, HeavyEdgesStayUncut) {
    // A chain of two cliques linked by a light edge: the cut must use the
    // light edge.
    Graph g(8);
    for (std::uint32_t a = 0; a < 4; ++a)
        for (std::uint32_t b = a + 1; b < 4; ++b) g.addEdge(a, b, 100);
    for (std::uint32_t a = 4; a < 8; ++a)
        for (std::uint32_t b = a + 1; b < 8; ++b) g.addEdge(a, b, 100);
    g.addEdge(3, 4, 1);
    g.finalize();
    PartitionOptions opt;
    opt.numParts = 2;
    const PartitionResult r = partitionGraph(g, opt);
    EXPECT_EQ(r.cutWeight, 1u);
}

TEST(Partitioner, DeterministicForFixedSeed) {
    const Graph g = gridGraph(6, 6, 6);
    PartitionOptions opt;
    opt.numParts = 4;
    const auto a = partitionGraph(g, opt);
    const auto b = partitionGraph(g, opt);
    EXPECT_EQ(a.part, b.part);
    EXPECT_EQ(a.cutWeight, b.cutWeight);
}

TEST(Partitioner, HandlesDisconnectedGraphs) {
    Graph g(6); // three disconnected pairs
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    g.addEdge(4, 5);
    g.finalize();
    PartitionOptions opt;
    opt.numParts = 3;
    const PartitionResult r = partitionGraph(g, opt);
    EXPECT_LE(r.imbalance, 1.6);
}

TEST(Partitioner, SingleVertexAndSinglePart) {
    Graph g(1);
    g.finalize();
    PartitionOptions opt;
    opt.numParts = 1;
    const PartitionResult r = partitionGraph(g, opt);
    EXPECT_EQ(r.part, std::vector<std::uint32_t>{0});
    EXPECT_EQ(r.cutWeight, 0u);
}

TEST(Partitioner, MorePartsThanVerticesLeavesEmptyParts) {
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.finalize();
    PartitionOptions opt;
    opt.numParts = 8;
    const PartitionResult r = partitionGraph(g, opt);
    for (auto p : r.part) EXPECT_LT(p, 8u);
    // The three vertices land in three distinct parts.
    EXPECT_NE(r.part[0], r.part[1]);
    EXPECT_NE(r.part[1], r.part[2]);
}

TEST(Partitioner, LargeGridScales) {
    const Graph g = gridGraph(16, 16, 16); // 4096 vertices
    PartitionOptions opt;
    opt.numParts = 32;
    const PartitionResult r = partitionGraph(g, opt);
    EXPECT_LE(r.imbalance, 1.25);
    const double randomCut = double(g.numEdges()) * (1.0 - 1.0 / 32.0);
    EXPECT_LT(double(r.cutWeight), 0.4 * randomCut);
}

} // namespace
} // namespace walb::partition
