/// Tests for `walb::rebalance` (measured-load dynamic rebalancing with live
/// block migration): CLI option parsing, the LoadModel EWMA, the Morton and
/// diffusion policies (determinism, tie-breaking by BlockID, bounded moves),
/// hysteresis of the epoch driver, digest invariance of a forced live
/// migration across 4 virtual ranks, cross-rank neighbor-list symmetry of
/// the rebuilt forest, shuffle-invariance of the static balancers, and the
/// fault drill that restarts from a checkpoint written *after* a migration
/// (exercising BlockID-based checkpoint matching).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <map>
#include <set>
#include <vector>

#include "core/Buffer.h"
#include "rebalance/LoadModel.h"
#include "rebalance/Migrator.h"
#include "rebalance/Policy.h"
#include "rebalance/Rebalancer.h"
#include "sim/Checkpoint.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/FaultyComm.h"
#include "vmpi/SerialComm.h"
#include "vmpi/ThreadComm.h"

namespace walb {
namespace {

using lbm::TRT;
using namespace std::chrono_literals;

// ---- shared fixtures -------------------------------------------------------

/// A row of `blocksX` 8^3 root blocks, Morton-balanced over `ranks`.
bf::SetupBlockForest makeRowSetup(std::uint32_t blocksX, std::uint32_t ranks) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 8.0 * blocksX, 8, 8);
    cfg.rootBlocksX = blocksX;
    cfg.rootBlocksY = cfg.rootBlocksZ = 1;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto setup = bf::SetupBlockForest::create(cfg);
    setup.balanceMorton(ranks);
    return setup;
}

/// Lid-driven cavity flags for a row of `blocksX` blocks (the same geometry
/// family the fault-tolerance drills use): moving lid at z = top, walls
/// elsewhere, fluid inside. A pure function of global position, as the
/// migration contract requires.
sim::DistributedSimulation::FlagInitializer rowCavityFlags(std::uint32_t blocksX) {
    const cell_idx_t NX = 8 * cell_idx_c(blocksX);
    return [NX](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                const bf::BlockForest::Block&, const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > real_c(NX) || p[1] > 8 ||
                p[2] > 8)
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if (g.z == 7) flags.addFlag(x, y, z, masks.ubb);
            else if (g.x == 0 || g.x == NX - 1 || g.y == 0 || g.y == 7 || g.z == 0)
                flags.addFlag(x, y, z, masks.noSlip);
            else flags.addFlag(x, y, z, masks.fluid);
        });
    };
}

/// Owner-by-setup-index of the stored assignment.
std::vector<std::uint32_t> currentOwners(const bf::SetupBlockForest& setup) {
    std::vector<std::uint32_t> owner;
    owner.reserve(setup.numBlocks());
    for (const auto& b : setup.blocks()) owner.push_back(b.process);
    return owner;
}

/// BlockID -> process map, the storage-order-independent view of an
/// assignment (what the shuffle-invariance tests compare).
std::map<bf::BlockID, std::uint32_t> assignmentById(const bf::SetupBlockForest& setup) {
    std::map<bf::BlockID, std::uint32_t> m;
    for (const auto& b : setup.blocks()) m[b.id] = b.process;
    return m;
}

// ---- options parsing -------------------------------------------------------

TEST(RebalanceOptionsTest, ParsesBothFlagStyles) {
    const char* argv[] = {"prog",
                          "--rebalance-every",     "7",
                          "--rebalance-policy=diffusion",
                          "--imbalance-threshold", "1.25",
                          "--rebalance-max-moves=3"};
    const auto opt = rebalance::RebalanceOptions::fromArgs(
        int(std::size(argv)), const_cast<char**>(argv));
    EXPECT_TRUE(opt.any());
    EXPECT_EQ(opt.every, 7u);
    EXPECT_EQ(opt.policy, "diffusion");
    EXPECT_DOUBLE_EQ(opt.imbalanceThreshold, 1.25);
    EXPECT_EQ(opt.maxMoves, 3u);
}

TEST(RebalanceOptionsTest, DefaultIsDisabled) {
    const char* argv[] = {"prog", "--steps", "30"};
    const auto opt = rebalance::RebalanceOptions::fromArgs(
        int(std::size(argv)), const_cast<char**>(argv));
    EXPECT_FALSE(opt.any());
    EXPECT_EQ(opt.policy, "morton");
    EXPECT_DOUBLE_EQ(opt.imbalanceThreshold, 1.10);
}

TEST(RebalanceOptionsTest, UnknownPolicyNameIsRejectedByFactory) {
    EXPECT_EQ(rebalance::makePolicy("round-robin"), nullptr);
    EXPECT_NE(rebalance::makePolicy("morton"), nullptr);
    EXPECT_NE(rebalance::makePolicy("diffusion"), nullptr);
}

// ---- measurement layer -----------------------------------------------------

TEST(LoadModelTest, FirstEpochIsTakenRawThenEwmaSmoothed) {
    const auto setup = makeRowSetup(2, 1);
    const bf::BlockForest forest(setup, 0);
    ASSERT_EQ(forest.blocks().size(), 2u);

    rebalance::LoadModel model(/*alpha=*/0.5);
    model.recordEpoch(forest, {4.0, 8.0});
    EXPECT_DOUBLE_EQ(model.smoothed(forest.blocks()[0].id), 4.0);
    EXPECT_DOUBLE_EQ(model.smoothed(forest.blocks()[1].id), 8.0);

    model.recordEpoch(forest, {2.0, 4.0});
    // alpha * measured + (1 - alpha) * previous
    EXPECT_DOUBLE_EQ(model.smoothed(forest.blocks()[0].id), 3.0);
    EXPECT_DOUBLE_EQ(model.smoothed(forest.blocks()[1].id), 6.0);
}

TEST(LoadModelTest, DropsBlocksThisRankNoLongerOwns) {
    auto setup = makeRowSetup(2, 2);
    rebalance::LoadModel model;
    {
        const bf::BlockForest forest(setup, 0);
        ASSERT_EQ(forest.blocks().size(), 1u);
        model.recordEpoch(forest, {1.0});
        EXPECT_EQ(model.numTracked(), 1u);
    }
    // Both blocks move to rank 1: rank 0's measurements are stale and must
    // be dropped — after a migration the new owner is the source of truth.
    for (auto& b : setup.blocks()) b.process = 1;
    const bf::BlockForest emptyForest(setup, 0);
    model.recordEpoch(emptyForest, {});
    EXPECT_EQ(model.numTracked(), 0u);
}

TEST(LoadModelTest, GatherGlobalFallsBackToStaticWorkloadWhenUnmeasured) {
    auto setup = makeRowSetup(3, 1);
    setup.blocks()[0].workload = 10;
    setup.blocks()[1].workload = 20;
    setup.blocks()[2].workload = 30;
    vmpi::SerialComm comm;
    const rebalance::LoadModel model; // nothing measured yet
    const auto weights = model.gatherGlobal(comm, setup);
    ASSERT_EQ(weights.size(), 3u);
    // Unmeasured blocks get weight proportional to the static workload.
    EXPECT_DOUBLE_EQ(weights[0], 10.0);
    EXPECT_DOUBLE_EQ(weights[1], 20.0);
    EXPECT_DOUBLE_EQ(weights[2], 30.0);
}

TEST(LoadModelTest, GatherGlobalAlignsMeasurementsWithSetupIndex) {
    const auto setup = makeRowSetup(2, 1);
    const bf::BlockForest forest(setup, 0);
    vmpi::SerialComm comm;
    rebalance::LoadModel model;
    model.recordEpoch(forest, {0.25, 0.75});
    const auto weights = model.gatherGlobal(comm, setup);
    ASSERT_EQ(weights.size(), 2u);
    EXPECT_DOUBLE_EQ(weights[0], 0.25);
    EXPECT_DOUBLE_EQ(weights[1], 0.75);
}

// ---- policy layer ----------------------------------------------------------

TEST(ImbalanceFactorTest, MaxOverAvgWithEmptyRanksCounted) {
    const std::vector<std::uint32_t> owner{0, 0, 1};
    const std::vector<double> weights{3, 1, 2};
    // loads: rank0 = 4, rank1 = 2, avg = 3.
    EXPECT_DOUBLE_EQ(rebalance::imbalanceFactor(owner, weights, 2), 4.0 / 3.0);
    // An idle rank *is* imbalance: one rank holds everything of two.
    EXPECT_DOUBLE_EQ(rebalance::imbalanceFactor(std::vector<std::uint32_t>{0},
                                                std::vector<double>{2.0}, 2),
                     2.0);
    // Degenerate inputs normalize to 1.
    EXPECT_DOUBLE_EQ(rebalance::imbalanceFactor(std::vector<std::uint32_t>{},
                                                std::vector<double>{}, 4),
                     1.0);
}

TEST(MortonPolicyTest, ResplitsSkewedMeasuredWeights) {
    const auto setup = makeRowSetup(8, 4);
    // Measured weights concentrated on the first blocks of the curve —
    // exactly what the static (count-based) balancer cannot see.
    const std::vector<double> weights{8, 8, 1, 1, 1, 1, 1, 1};
    const rebalance::RebalanceContext ctx{setup, weights, 4};
    const double before = rebalance::imbalanceFactor(setup, weights, 4);
    const rebalance::MortonPolicy policy;
    const auto proposed = policy.propose(ctx);
    ASSERT_EQ(proposed.size(), setup.numBlocks());
    EXPECT_LT(rebalance::imbalanceFactor(proposed, weights, 4), before);
    // Deterministic function of its context.
    EXPECT_EQ(policy.propose(ctx), proposed);
    // The curve split is monotone: owners never decrease along the row
    // (the row's storage order *is* its Morton order).
    for (std::size_t i = 1; i < proposed.size(); ++i)
        EXPECT_GE(proposed[i], proposed[i - 1]);
}

TEST(MortonPolicyTest, AssignmentIsIndependentOfStorageOrder) {
    // Weights are a function of the BlockID so they can follow the shuffle.
    auto weightsFor = [](const bf::SetupBlockForest& s) {
        std::vector<double> w;
        for (const auto& b : s.blocks()) w.push_back(1.0 + double(b.id.rootIndex() % 3));
        return w;
    };
    auto a = makeRowSetup(8, 4);
    auto b = a;
    b.shuffleBlocks(/*seed=*/99);

    const rebalance::MortonPolicy policy;
    const auto wa = weightsFor(a);
    const auto wb = weightsFor(b);
    const auto pa = policy.propose({a, wa, 4});
    const auto pb = policy.propose({b, wb, 4});

    std::map<bf::BlockID, std::uint32_t> byIdA, byIdB;
    for (std::size_t i = 0; i < a.numBlocks(); ++i) byIdA[a.blocks()[i].id] = pa[i];
    for (std::size_t i = 0; i < b.numBlocks(); ++i) byIdB[b.blocks()[i].id] = pb[i];
    EXPECT_EQ(byIdA, byIdB);
}

TEST(DiffusionPolicyTest, BoundsBlocksMovedPerEpoch) {
    const auto setup = makeRowSetup(8, 4);
    const std::vector<double> weights{8, 8, 1, 1, 1, 1, 1, 1};
    const auto owner = currentOwners(setup);

    for (std::uint32_t maxMoves : {1u, 2u, 8u}) {
        const rebalance::DiffusionPolicy policy(maxMoves);
        const auto proposed = policy.propose({setup, weights, 4});
        ASSERT_EQ(proposed.size(), owner.size());
        std::size_t moved = 0;
        for (std::size_t i = 0; i < owner.size(); ++i)
            if (proposed[i] != owner[i]) ++moved;
        EXPECT_LE(moved, maxMoves) << "maxMoves=" << maxMoves;
        EXPECT_LE(rebalance::imbalanceFactor(proposed, weights, 4),
                  rebalance::imbalanceFactor(owner, weights, 4));
    }
}

TEST(DiffusionPolicyTest, StopsWhenNoMoveImproves) {
    const auto setup = makeRowSetup(4, 4); // one block per rank, all equal
    const std::vector<double> weights{1, 1, 1, 1};
    const rebalance::DiffusionPolicy policy(8);
    // Already balanced: every move would only raise the pairwise maximum.
    EXPECT_EQ(policy.propose({setup, weights, 4}), currentOwners(setup));
}

// ---- static balancer shuffle-invariance (tie-break regression) -------------

TEST(PartitionerDeterminism, BalanceGraphIsInvariantUnderBlockShuffle) {
    bf::SetupConfig cfg;
    cfg.domain = AABB(0, 0, 0, 32, 16, 16);
    cfg.rootBlocksX = 4;
    cfg.rootBlocksY = cfg.rootBlocksZ = 2;
    cfg.cellsPerBlockX = cfg.cellsPerBlockY = cfg.cellsPerBlockZ = 8;
    auto a = bf::SetupBlockForest::create(cfg);
    // Equal workloads everywhere: every balancing decision is a tie, the
    // worst case for order-dependence.
    for (auto& blk : a.blocks()) blk.workload = 100;
    auto b = a;
    b.shuffleBlocks(/*seed=*/7);

    a.balanceGraph(4);
    b.balanceGraph(4);
    EXPECT_EQ(assignmentById(a), assignmentById(b));

    auto c = a, d = b; // already-balanced copies, rebalance with Morton
    c.balanceMorton(4);
    d.balanceMorton(4);
    EXPECT_EQ(assignmentById(c), assignmentById(d));
}

// ---- epoch driver (hysteresis) ---------------------------------------------

TEST(RebalancerTest, HysteresisSkipsHealthyRunsAndMigratesSkewedOnes) {
    const auto setup = makeRowSetup(4, 2);
    const auto flagInit = rowCavityFlags(4);
    std::atomic<int> healthySkips{0}, skewedMigrations{0};
    std::atomic<std::uint64_t> digestBefore{0}, digestAfter{0};

    vmpi::ThreadCommWorld::launch(2, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        simulation.run(3, TRT::fromOmegaAndMagic(1.4));
        const std::uint64_t d0 = simulation.stateDigest();
        if (comm.rank() == 0) digestBefore = d0;

        rebalance::RebalanceOptions opt;
        opt.every = 1; // irrelevant: runEpoch is driven directly
        rebalance::Rebalancer rebalancer(simulation, opt);

        // Balanced measured weights: below the hysteresis threshold,
        // nothing may migrate.
        if (!rebalancer.runEpoch(10, {1, 1, 1, 1})) ++healthySkips;
        ASSERT_FALSE(rebalancer.history().empty());
        EXPECT_FALSE(rebalancer.history().back().migrated);
        EXPECT_DOUBLE_EQ(rebalancer.history().back().imbalanceBefore, 1.0);

        // Skewed measured weights (loads 8 vs 2 under the Morton-balanced
        // 2+2 assignment): above threshold, the epoch must migrate and the
        // interior digest must survive it bit-exactly.
        if (rebalancer.runEpoch(20, {6, 2, 1, 1})) ++skewedMigrations;
        const auto& rec = rebalancer.history().back();
        EXPECT_TRUE(rec.migrated);
        EXPECT_LT(rec.imbalanceAfter, rec.imbalanceBefore);
        EXPECT_GT(rec.blocksMoved, 0u);
        EXPECT_GT(simulation.metrics().counter("rebalance.blocks_moved").value(), 0u);
        const std::uint64_t d1 = simulation.stateDigest();
        if (comm.rank() == 0) digestAfter = d1;
    });
    EXPECT_EQ(healthySkips.load(), 2);
    EXPECT_EQ(skewedMigrations.load(), 2);
    EXPECT_EQ(digestAfter.load(), digestBefore.load());
}

// ---- live migration --------------------------------------------------------

TEST(MigrationTest, ForcedMigrationIsDigestInvariantAndConverges) {
    const std::uint32_t ranks = 4;
    const auto setup = makeRowSetup(ranks, ranks);
    const auto flagInit = rowCavityFlags(ranks);
    const TRT op = TRT::fromOmegaAndMagic(1.4);

    // Reference: 10 uninterrupted steps, never migrated.
    std::atomic<std::uint64_t> wantDigest{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        simulation.run(10, op);
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) wantDigest = d;
    });

    // Migrating run: rotate every block to the next rank after step 5 —
    // every block moves, the hardest case for the pack/unpack protocol.
    std::atomic<std::uint64_t> gotDigest{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        simulation.run(5, op);
        const std::uint64_t before = simulation.stateDigest();

        std::vector<std::uint32_t> rotated = currentOwners(simulation.setup());
        for (auto& r : rotated) r = (r + 1) % ranks;
        const auto stats = rebalance::migrate(simulation, rotated);
        EXPECT_EQ(stats.blocksMoved, std::size_t(ranks));

        // Bit-exact across the migration itself...
        EXPECT_EQ(simulation.stateDigest(), before);
        // ...and the refilled ghost layers feed the continued run the same
        // values the never-migrated run sees: trajectories stay identical.
        simulation.run(5, op);
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) gotDigest = d;
    });
    EXPECT_EQ(gotDigest.load(), wantDigest.load());
}

TEST(MigrationTest, NeighborListsStaySymmetricAcrossRanks) {
    const std::uint32_t ranks = 4;
    const auto setup = makeRowSetup(2 * ranks, ranks);
    const auto flagInit = rowCavityFlags(2 * ranks);

    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.run(2, TRT::fromOmegaAndMagic(1.4));

        std::vector<std::uint32_t> rotated = currentOwners(simulation.setup());
        for (auto& r : rotated) r = (r + 1) % ranks;
        rebalance::migrate(simulation, rotated);

        // The stored setup is the authoritative block -> rank map: every
        // rebuilt neighbor entry must agree with it.
        std::map<bf::BlockID, std::uint32_t> ownerById;
        for (const auto& b : simulation.setup().blocks()) ownerById[b.id] = b.process;
        SendBuffer sb;
        std::uint32_t pairs = 0;
        for (const auto& block : simulation.forest().blocks()) {
            for (const auto& n : block.neighbors) {
                ASSERT_TRUE(ownerById.count(n.id));
                EXPECT_EQ(n.process, ownerById[n.id]);
                sb << block.id.rootIndex() << n.id.rootIndex() << std::int8_t(n.dir[0])
                   << std::int8_t(n.dir[1]) << std::int8_t(n.dir[2]);
                ++pairs;
            }
        }
        EXPECT_GT(pairs, 0u);

        // Allgather every rank's (A -> B, dir) edges: A lists B iff B lists
        // A through the opposite direction — also across rank boundaries.
        const std::vector<std::uint8_t> mine = sb.release();
        auto all = comm.allgatherv(std::span<const std::uint8_t>(mine));
        std::set<std::tuple<std::uint32_t, std::uint32_t, int, int, int>> edges;
        for (auto& bytes : all) {
            RecvBuffer rb(std::move(bytes));
            while (!rb.atEnd()) {
                std::uint32_t a = 0, b = 0;
                std::int8_t dx = 0, dy = 0, dz = 0;
                rb >> a >> b >> dx >> dy >> dz;
                edges.insert({a, b, dx, dy, dz});
            }
        }
        for (const auto& [a, b, dx, dy, dz] : edges)
            EXPECT_TRUE(edges.count({b, a, -dx, -dy, -dz}))
                << "block " << a << " lists " << b << " without the mirror edge";
    });
}

// ---- migration + restart fault drill ---------------------------------------

TEST(FaultDrill, RestartFromPostMigrationCheckpointMatchesUninterrupted) {
    // Timeline of the "killed" run: checkpoint every 5 steps, a forced
    // full-rotation migration at step 12, rank 2 dies at step 17. The last
    // surviving checkpoint (step 15) was therefore written under the
    // *migrated* assignment; the restart reconstructs the original one, so
    // matching file blocks to local blocks must go through BlockIDs.
    const std::uint32_t ranks = 4;
    const std::string ckpt = testing::TempDir() + "/walb_rebalance_drill.wckp";
    std::remove(ckpt.c_str());
    const auto setup = makeRowSetup(ranks, ranks);
    const auto flagInit = rowCavityFlags(ranks);
    const TRT op = TRT::fromOmegaAndMagic(1.4);

    vmpi::FaultPlan plan;
    plan.killRank = 2;
    plan.killAtStep = 17;

    std::atomic<int> structured{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        vmpi::FaultyComm faulty(comm, plan);
        faulty.setRecvDeadline(2000ms);
        sim::DistributedSimulation simulation(faulty, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        simulation.setPreStepCallback(
            [&](std::uint64_t step) { faulty.beginStep(step); });
        simulation.setStepHook([&](std::uint64_t step) {
            if (step != 12) return;
            std::vector<std::uint32_t> rotated = currentOwners(simulation.setup());
            for (auto& r : rotated) r = (r + 1) % ranks;
            rebalance::migrate(simulation, rotated);
        });
        sim::CheckpointOptions opt;
        opt.every = 5;
        opt.path = ckpt;
        try {
            sim::runWithCheckpoints(simulation, opt, 20, op);
            ADD_FAILURE() << "rank " << comm.rank() << " finished despite the kill";
        } catch (const vmpi::CommError& e) {
            EXPECT_TRUE(e.kind == vmpi::CommError::Kind::RankKilled ||
                        e.kind == vmpi::CommError::Kind::DeadlineExceeded)
                << e.what();
            ++structured;
        }
    });
    EXPECT_EQ(structured.load(), int(ranks));

    sim::CheckpointHeader h;
    std::string err;
    ASSERT_TRUE(sim::checkpointPeek(ckpt, h, &err)) << err;
    EXPECT_EQ(h.step, 15u); // written after the step-12 migration

    // Reference: the uninterrupted, never-migrated 20-step run.
    std::atomic<std::uint64_t> wantDigest{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        simulation.run(20, op);
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) wantDigest = d;
    });

    // Restart under the ORIGINAL assignment from the post-migration
    // checkpoint and finish: the trajectory must be bit-exact.
    std::atomic<std::uint64_t> gotDigest{0};
    vmpi::ThreadCommWorld::launch(int(ranks), [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.03, 0, 0});
        sim::CheckpointOptions opt;
        opt.restartFrom = ckpt;
        const std::uint64_t executed = sim::runWithCheckpoints(simulation, opt, 20, op);
        EXPECT_EQ(executed, 5u);
        EXPECT_EQ(simulation.currentStep(), 20u);
        const std::uint64_t d = simulation.stateDigest();
        if (comm.rank() == 0) gotDigest = d;
    });
    EXPECT_EQ(gotDigest.load(), wantDigest.load());
    std::remove(ckpt.c_str());
}

} // namespace
} // namespace walb
