/// walb_lint — project-invariant static analyzer for the walb tree.
///
///   walb_lint --check <dir|file>... [--tags F] [--metrics F]
///       Lint every .h/.cpp under the given paths. The tag registry
///       (src/vmpi/Tags.h) and metric registry (src/obs/MetricNames.h) are
///       located automatically inside the scanned set, or passed
///       explicitly. Nonzero exit on any violation.
///   walb_lint --dump-metrics <dir|file>...
///       Print the metric-name literals used under the paths as
///       X("...") lines, ready to paste into MetricNames.h.
///   walb_lint --list-rules
///       Print the rules table.
///   walb_lint --selftest
///       Falsifiability gate: run every rule against seeded-violation
///       snippets (and seeded-clean ones) and fail unless each seeded
///       violation is detected at its exact line — so a rule that rots
///       into a no-op fails CI instead of silently passing everything.
///
/// See DESIGN.md "Static analysis & enforced invariants" for the rule
/// semantics and the annotation syntax.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/Lint.h"

using namespace walb;

namespace {

bool readFile(const std::string& path, std::string& out) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    if (is.bad()) return false;
    out = ss.str();
    return true;
}

bool hasSourceExtension(const std::filesystem::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc";
}

/// Expands the path arguments into a sorted list of source files.
bool collectFiles(const std::vector<std::string>& roots, std::vector<std::string>& out) {
    namespace fs = std::filesystem;
    for (const std::string& root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            for (auto it = fs::recursive_directory_iterator(root, ec);
                 it != fs::recursive_directory_iterator(); it.increment(ec)) {
                if (ec) break;
                if (it->is_regular_file(ec) && hasSourceExtension(it->path()))
                    out.push_back(it->path().string());
            }
        } else if (fs::is_regular_file(root, ec)) {
            out.push_back(root);
        } else {
            std::fprintf(stderr, "walb_lint: cannot read '%s'\n", root.c_str());
            return false;
        }
    }
    std::sort(out.begin(), out.end());
    return true;
}

bool endsWith(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void printViolations(const std::vector<lint::Violation>& vs) {
    for (const lint::Violation& v : vs)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                     v.message.c_str());
}

// ---- --check ---------------------------------------------------------------

int runCheck(std::vector<std::string> paths, std::string tagsPath, std::string metricsPath) {
    std::vector<std::string> files;
    if (!collectFiles(paths, files)) return 2;
    if (files.empty()) {
        std::fprintf(stderr, "walb_lint: no source files under the given paths\n");
        return 2;
    }
    // Locate the registries inside the scanned set unless given explicitly.
    for (const std::string& f : files) {
        if (tagsPath.empty() && endsWith(f, "vmpi/Tags.h")) tagsPath = f;
        if (metricsPath.empty() && endsWith(f, "obs/MetricNames.h")) metricsPath = f;
    }

    lint::Linter linter;
    std::vector<lint::Violation> violations;
    std::string text;
    if (!tagsPath.empty()) {
        if (!readFile(tagsPath, text)) {
            std::fprintf(stderr, "walb_lint: cannot read tag registry '%s'\n",
                         tagsPath.c_str());
            return 2;
        }
        linter.loadTagRegistry(tagsPath, text, violations);
    } else {
        std::fprintf(stderr, "walb_lint: warning: no tag registry (vmpi/Tags.h) in the "
                             "scanned set — band checks skipped\n");
    }
    if (!metricsPath.empty()) {
        if (!readFile(metricsPath, text)) {
            std::fprintf(stderr, "walb_lint: cannot read metric registry '%s'\n",
                         metricsPath.c_str());
            return 2;
        }
        linter.loadMetricNames(metricsPath, text, violations);
    }

    for (const std::string& f : files) {
        if (!readFile(f, text)) {
            std::fprintf(stderr, "walb_lint: cannot read '%s'\n", f.c_str());
            return 2;
        }
        std::vector<lint::Violation> vs = linter.checkFile(f, text);
        violations.insert(violations.end(), vs.begin(), vs.end());
    }

    printViolations(violations);
    std::printf("walb_lint: %zu file(s), %zu violation(s)\n", files.size(),
                violations.size());
    return violations.empty() ? 0 : 1;
}

// ---- --dump-metrics --------------------------------------------------------

int runDumpMetrics(const std::vector<std::string>& paths) {
    std::vector<std::string> files;
    if (!collectFiles(paths, files)) return 2;
    std::set<std::string> names;
    std::string text;
    for (const std::string& f : files) {
        if (endsWith(f, "obs/MetricNames.h")) continue; // the registry itself
        if (!readFile(f, text)) {
            std::fprintf(stderr, "walb_lint: cannot read '%s'\n", f.c_str());
            return 2;
        }
        for (const std::string& n : lint::Linter::collectMetricLiterals(text))
            names.insert(n);
    }
    for (const std::string& n : names) std::printf("    X(\"%s\") \\\n", n.c_str());
    return 0;
}

// ---- --selftest ------------------------------------------------------------

/// A seeded-violation (or seeded-clean) snippet with the exact (rule, line)
/// findings it must produce.
struct SelfTestCase {
    const char* name;
    const char* source;
    std::vector<std::pair<std::string, int>> expected;
};

/// Hermetic mini registries so the selftest does not depend on the tree.
const char* kTestTags = R"walb(
// walb-lint: tag-stride
inline constexpr int kEpochTagStride = 1 << 20;
// walb-lint: tag-band(user, 0, 1023)
inline constexpr int kGhost = 77;
// walb-lint: tag-band(control, -9200, -9100)
inline constexpr int kNack = -9117;
)walb";

const char* kTestMetrics = R"walb(
// walb-lint: metric-names-begin
#define WALB_METRIC_NAMES(X) \
    X("sim.steps") \
    X("comm.hidden_seconds")
// walb-lint: metric-names-end
)walb";

std::vector<SelfTestCase> fileCases() {
    return {
        {"blocking: unguarded recv flagged, annotated and guarded ones pass",
         R"walb(void f(Comm& comm) {
    auto a = comm.recv(0, kGhost);
    comm.setRecvDeadline(std::chrono::milliseconds(100));
    auto b = comm.recv(0, kGhost);
}
void g(Comm& comm) {
    // walb-lint: allow(blocking): setup-time collective, world known alive
    comm.barrier();
    comm.broadcast(data, 0);
}
)walb",
         {{"blocking-guard", 2}, {"blocking-guard", 9}}},
        // (the annotation on line 7 covers the barrier on line 8 only —
        // the unannotated broadcast on line 9 must still be flagged)

        {"blocking: free helpers and bare collectives",
         R"walb(void h(Comm& comm) {
    double x = vmpi::allreduceSum(comm, 1.0);
    barrier();
}
)walb",
         {{"blocking-guard", 2}, {"blocking-guard", 3}}},

        {"tag-registry: magic literals at call sites",
         R"walb(void f(Comm& comm) {
    comm.send(1, 91, bytes);
    comm.tryRecv(0, 55, out);
    sendObject(comm, 1, 42, obj);
    // walb-lint: allow(tag-registry): fixture exercising the annotation
    comm.send(1, 91, bytes);
}
constexpr int kMyTag = -9300;
)walb",
         {{"tag-registry", 2},
          {"tag-registry", 3},
          {"tag-registry", 4},
          {"tag-registry", 8}}},

        {"metric-name: typo'd series fails, declared one passes",
         R"walb(void f(obs::MetricsRegistry& reg) {
    reg.counter("sim.steps").inc();
    reg.gauge("comm.hiden_seconds").set(1.0);
}
)walb",
         {{"metric-name", 3}}},

        {"determinism: clocks, randomness and float math in digest code",
         R"walb(std::uint64_t digest(const Field& f) {
    // walb-lint: begin(deterministic)
    std::uint64_t h = 0;
    double acc = 0;
    h += std::rand();
    auto t0 = std::chrono::steady_clock::now();
    h += crc32(f.data(), f.cells() * sizeof(real_t));
    // walb-lint: end(deterministic)
    return h;
}
)walb",
         {{"determinism", 4}, {"determinism", 5}, {"determinism", 6}}},

        {"lock-scope: comm call under lock, predicate-less wait outside loop",
         R"walb(void f() {
    std::lock_guard<std::mutex> lock(m);
    comm.send(0, kGhost, bytes);
}
void g() {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock);
}
void ok() {
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
        cv.wait(lock);
        return;
    }
}
)walb",
         {{"lock-scope", 3}, {"lock-scope", 7}}},

        {"clean file: realistic guarded/annotated code produces nothing",
         R"walb(void step(Comm& comm) {
    comm.setRecvDeadline(std::chrono::milliseconds(2000));
    while (pending > 0) {
        auto bytes = comm.recv(src, kGhost);
        pending -= 1;
    }
    // walb-lint: allow(blocking): epilogue reduction, all ranks alive here
    vmpi::allreduceSum(comm, localCells);
}
)walb",
         {}},
    };
}

/// Seeded-violation registry sources for the band-overlap checks.
struct RegistryCase {
    const char* name;
    const char* source;
    std::vector<std::pair<std::string, int>> expected;
};

std::vector<RegistryCase> registryCases() {
    return {
        {"registry: overlapping bands",
         R"walb(
// walb-lint: tag-stride
inline constexpr int kEpochTagStride = 1 << 20;
// walb-lint: tag-band(user, 0, 1023)
inline constexpr int kGhost = 77;
// walb-lint: tag-band(migration, 900, 1100)
inline constexpr int kMigration = 1000;
)walb",
         {{"tag-registry", 6}}},

        {"registry: tag outside its band and duplicate values",
         R"walb(
// walb-lint: tag-stride
inline constexpr int kEpochTagStride = 1 << 20;
// walb-lint: tag-band(user, 0, 1023)
inline constexpr int kGhost = 77;
inline constexpr int kStray = 5000;
inline constexpr int kGhost2 = 77;
)walb",
         {{"tag-registry", 6}, {"tag-registry", 7}}},

        {"registry: epoch-shift collision",
         R"walb(
// walb-lint: tag-stride
inline constexpr int kEpochTagStride = 1 << 10;
// walb-lint: tag-band(user, 0, 1023)
inline constexpr int kGhost = 77;
// walb-lint: tag-band(control, -9200, -9100)
inline constexpr int kNack = -9117;
)walb",
         // user+d*1024 walks over itself is impossible (disjoint bands are
         // re-checked per d); control shifted by 9 strides lands in user.
         {{"tag-registry", 6}}},

        {"registry: missing stride marker",
         R"walb(
// walb-lint: tag-band(user, 0, 1023)
inline constexpr int kGhost = 77;
)walb",
         {{"tag-registry", 1}}},

        {"registry: clean mini registry",
         kTestTags,
         {}},
    };
}

bool sameFindings(const std::vector<lint::Violation>& got,
                  const std::vector<std::pair<std::string, int>>& want) {
    if (got.size() != want.size()) return false;
    std::vector<std::pair<std::string, int>> g;
    for (const lint::Violation& v : got) g.emplace_back(v.rule, v.line);
    std::vector<std::pair<std::string, int>> w = want;
    std::sort(g.begin(), g.end());
    std::sort(w.begin(), w.end());
    return g == w;
}

int selftest() {
    int failures = 0;

    lint::Linter linter;
    std::vector<lint::Violation> setupViolations;
    linter.loadTagRegistry("test/Tags.h", kTestTags, setupViolations);
    linter.loadMetricNames("test/MetricNames.h", kTestMetrics, setupViolations);
    if (!setupViolations.empty()) {
        std::fprintf(stderr, "walb_lint: selftest registries are not clean:\n");
        printViolations(setupViolations);
        ++failures;
    }

    for (const SelfTestCase& c : fileCases()) {
        const auto got = linter.checkFile("fixture.cpp", c.source);
        if (!sameFindings(got, c.expected)) {
            std::fprintf(stderr, "walb_lint: selftest FAILED: %s\n  got:\n", c.name);
            printViolations(got);
            std::fprintf(stderr, "  want:\n");
            for (const auto& [rule, line] : c.expected)
                std::fprintf(stderr, "    line %d: [%s]\n", line, rule.c_str());
            ++failures;
        }
    }

    for (const RegistryCase& c : registryCases()) {
        lint::Linter reg;
        std::vector<lint::Violation> got;
        reg.loadTagRegistry("Tags.h", c.source, got);
        if (!sameFindings(got, c.expected)) {
            std::fprintf(stderr, "walb_lint: selftest FAILED: %s\n  got:\n", c.name);
            printViolations(got);
            ++failures;
        }
    }

    if (failures) {
        std::fprintf(stderr, "walb_lint: selftest: %d case(s) failed\n", failures);
        return 1;
    }
    std::printf("selftest OK (%zu file cases, %zu registry cases)\n", fileCases().size(),
                registryCases().size());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        std::fprintf(stderr,
                     "usage: walb_lint --check <dir|file>... [--tags F] [--metrics F]\n"
                     "       walb_lint --dump-metrics <dir|file>...\n"
                     "       walb_lint --list-rules | --selftest\n");
        return 2;
    }
    if (args[0] == "--selftest") return selftest();
    if (args[0] == "--list-rules") {
        for (const lint::RuleInfo& r : lint::ruleTable())
            std::printf("%-16s %s\n", r.name, r.description);
        return 0;
    }
    if (args[0] == "--check" || args[0] == "--dump-metrics") {
        std::vector<std::string> paths;
        std::string tagsPath, metricsPath;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i] == "--tags" && i + 1 < args.size()) tagsPath = args[++i];
            else if (args[i] == "--metrics" && i + 1 < args.size()) metricsPath = args[++i];
            else paths.push_back(args[i]);
        }
        if (paths.empty()) {
            std::fprintf(stderr, "walb_lint: no paths given\n");
            return 2;
        }
        return args[0] == "--check" ? runCheck(paths, tagsPath, metricsPath)
                                    : runDumpMetrics(paths);
    }
    std::fprintf(stderr, "walb_lint: unknown mode '%s'\n", args[0].c_str());
    return 2;
}
