/// walb_blockinfo — inspect a block-structure file (paper §2.2 format).
///
/// Usage: walb_blockinfo [--loads] [--json] [--wfr <dump.wfr>] <forest.walb>
///
/// Prints the domain, grid configuration, per-process workload statistics
/// and the level histogram, without loading any cell data — the file holds
/// only the metadata needed to reconstruct the distributed forest.
///
/// --loads switches to the per-rank load table: block count and weight sum
/// of every process plus the imbalance factor max/avg — the offline view
/// of the assignment the rebalance subsystem acts on at runtime.
///
/// --json emits the same information (summary AND per-rank loads) as one
/// machine-readable JSON document, so CI gates and the serve drill can
/// assert on placement without screen-scraping the tables above.
///
/// --wfr <dump.wfr> additionally reads a flight-recorder dump of a run on
/// this structure and reports the active kernel tier and — for the in-place
/// AA-pattern tiers — the step parity the run stopped at (text and JSON).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <vector>

#include "blockforest/SetupBlockForest.h"
#include "obs/FlightRecorder.h"
#include "obs/Json.h"

namespace {

struct RankLoads {
    std::vector<std::uint64_t> work;
    std::vector<walb::uint_t> count;
    std::uint64_t maxWork = 0;
    double avg = 0;
    bool ok = true;
};

RankLoads computeLoads(const walb::bf::SetupBlockForest& forest) {
    RankLoads loads;
    const std::uint32_t ranks = forest.numProcesses();
    loads.work.assign(ranks, 0);
    loads.count.assign(ranks, 0);
    for (const auto& b : forest.blocks()) {
        if (b.process >= ranks) {
            std::fprintf(stderr, "error: block assigned to process %u of %u\n",
                         b.process, ranks);
            loads.ok = false;
            return loads;
        }
        loads.work[b.process] += b.workload;
        ++loads.count[b.process];
    }
    for (const std::uint64_t w : loads.work) loads.maxWork = std::max(loads.maxWork, w);
    loads.avg = ranks > 0 ? double(forest.totalWorkload()) / double(ranks) : 0.0;
    return loads;
}

/// Per-rank block counts, workload sums and the max/avg imbalance factor.
int printLoads(const walb::bf::SetupBlockForest& forest, const char* path) {
    using namespace walb;
    const std::uint32_t ranks = forest.numProcesses();
    const RankLoads loads = computeLoads(forest);
    if (!loads.ok) return 1;
    const double total = double(forest.totalWorkload());

    std::printf("per-rank loads: %s\n", path);
    std::printf("%8s %10s %16s %10s\n", "rank", "blocks", "weight", "share");
    for (std::uint32_t r = 0; r < ranks; ++r)
        std::printf("%8u %10llu %16llu %9.2f%%\n", r,
                    (unsigned long long)loads.count[r], (unsigned long long)loads.work[r],
                    total > 0 ? 100.0 * double(loads.work[r]) / total : 0.0);
    std::printf("total workload   %llu over %u rank(s)\n",
                (unsigned long long)forest.totalWorkload(), ranks);
    std::printf("imbalance factor %.4f (max/avg)\n",
                loads.avg > 0 ? double(loads.maxWork) / loads.avg : 1.0);
    return 0;
}

/// Runtime state extracted from an optional flight-recorder dump.
struct FlightInfo {
    bool present = false;
    std::uint32_t rank = 0;
    std::uint64_t lastStep = 0;
    std::uint8_t kernelTier = 0;
    std::uint8_t aaParity = 0;
};

bool loadFlightInfo(const char* wfrPath, FlightInfo& out) {
    walb::obs::FlightRecorder::Dump dump;
    std::string err;
    if (!walb::obs::FlightRecorder::read(wfrPath, dump, &err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return false;
    }
    if (dump.samples.empty()) {
        std::fprintf(stderr, "error: '%s' holds no samples\n", wfrPath);
        return false;
    }
    out.present = true;
    out.rank = dump.rank;
    out.lastStep = dump.samples.back().step;
    out.kernelTier = dump.samples.back().kernelTier;
    out.aaParity = dump.samples.back().aaParity;
    return true;
}

/// Machine-readable dump: summary, balance statistics and the per-rank
/// load table in one JSON object.
int printJson(const walb::bf::SetupBlockForest& forest, const char* path,
              const FlightInfo& flight) {
    using namespace walb;
    const auto& cfg = forest.config();
    const RankLoads loads = computeLoads(forest);
    if (!loads.ok) return 1;
    const auto stats = forest.balanceStats();
    const double total = double(forest.totalWorkload());

    obs::json::Writer w(std::cout);
    w.beginObject();
    w.kv("path", path);
    w.key("domain").beginObject();
    w.key("min").beginArray();
    for (int i = 0; i < 3; ++i) w.value(double(cfg.domain.min()[std::size_t(i)]));
    w.endArray();
    w.key("max").beginArray();
    for (int i = 0; i < 3; ++i) w.value(double(cfg.domain.max()[std::size_t(i)]));
    w.endArray();
    w.endObject();
    w.key("root_grid").beginArray();
    w.value(cfg.rootBlocksX).value(cfg.rootBlocksY).value(cfg.rootBlocksZ);
    w.endArray();
    w.kv("refinement_level", std::uint64_t(cfg.refinementLevel));
    w.key("cells_per_block").beginArray();
    w.value(cfg.cellsPerBlockX).value(cfg.cellsPerBlockY).value(cfg.cellsPerBlockZ);
    w.endArray();
    w.kv("dx", double(cfg.dx()));
    w.kv("blocks", std::uint64_t(forest.numBlocks()));
    w.kv("blocks_possible",
         std::uint64_t(cfg.blocksX()) * cfg.blocksY() * cfg.blocksZ());
    w.kv("processes", forest.numProcesses());
    w.kv("total_workload", forest.totalWorkload());
    w.kv("imbalance", stats.imbalance);
    w.kv("max_blocks_per_process", stats.maxBlocksPerProcess);
    w.kv("empty_processes", stats.emptyProcesses);
    w.key("ranks").beginArray();
    for (std::uint32_t r = 0; r < forest.numProcesses(); ++r) {
        w.beginObject();
        w.kv("rank", r);
        w.kv("blocks", std::uint64_t(loads.count[r]));
        w.kv("weight", loads.work[r]);
        w.kv("share", total > 0 ? double(loads.work[r]) / total : 0.0);
        w.endObject();
    }
    w.endArray();
    if (flight.present) {
        w.key("flight").beginObject();
        w.kv("rank", flight.rank);
        w.kv("last_step", flight.lastStep);
        w.kv("kernel_tier", obs::kernelTierName(flight.kernelTier));
        w.kv("aa_parity", std::uint64_t(flight.aaParity));
        w.endObject();
    }
    w.endObject();
    std::cout << "\n";
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    using namespace walb;
    bool loads = false;
    bool json = false;
    const char* path = nullptr;
    const char* wfrPath = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--loads") == 0)
            loads = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--wfr") == 0 && i + 1 < argc)
            wfrPath = argv[++i];
        else if (!path)
            path = argv[i];
        else
            path = ""; // more than one positional argument -> usage error
    }
    if (!path || path[0] == '\0') {
        std::fprintf(stderr, "usage: %s [--loads] [--json] [--wfr <dump.wfr>] "
                             "<forest.walb>\n",
                     argv[0]);
        return 2;
    }
    const auto forest = bf::SetupBlockForest::loadFromFile(path);
    if (!forest) {
        std::fprintf(stderr, "error: cannot read '%s'\n", path);
        return 1;
    }
    FlightInfo flight;
    if (wfrPath && !loadFlightInfo(wfrPath, flight)) return 1;
    if (json) return printJson(*forest, path, flight);
    if (loads) return printLoads(*forest, path);

    const auto& cfg = forest->config();
    std::printf("walb block structure: %s\n", path);
    std::printf("  domain           [%g %g %g] .. [%g %g %g]\n", cfg.domain.min()[0],
                cfg.domain.min()[1], cfg.domain.min()[2], cfg.domain.max()[0],
                cfg.domain.max()[1], cfg.domain.max()[2]);
    std::printf("  root grid        %u x %u x %u, refinement level %u\n", cfg.rootBlocksX,
                cfg.rootBlocksY, cfg.rootBlocksZ, cfg.refinementLevel);
    std::printf("  cells per block  %u x %u x %u  (dx = %g)\n", cfg.cellsPerBlockX,
                cfg.cellsPerBlockY, cfg.cellsPerBlockZ, cfg.dx());
    std::printf("  blocks           %zu of %u possible (%.2f%% occupied)\n",
                forest->numBlocks(),
                cfg.blocksX() * cfg.blocksY() * cfg.blocksZ(),
                100.0 * double(forest->numBlocks()) /
                    double(cfg.blocksX()) / cfg.blocksY() / cfg.blocksZ());
    std::printf("  processes        %u\n", forest->numProcesses());
    std::printf("  total workload   %llu fluid cells (%.1f%% of block cells)\n",
                (unsigned long long)forest->totalWorkload(),
                100.0 * double(forest->totalWorkload()) /
                    (double(forest->numBlocks()) * double(cfg.cellsPerBlock())));

    const auto stats = forest->balanceStats();
    std::printf("  balance          imbalance %.3f, max %u blocks/process, %u empty "
                "processes\n",
                stats.imbalance, stats.maxBlocksPerProcess, stats.emptyProcesses);

    std::map<std::uint32_t, uint_t> blocksPerProcessHisto;
    {
        std::map<std::uint32_t, uint_t> count;
        for (const auto& b : forest->blocks()) ++count[b.process];
        for (const auto& [proc, n] : count) ++blocksPerProcessHisto[std::uint32_t(n)];
    }
    std::printf("  blocks/process histogram:\n");
    for (const auto& [n, procs] : blocksPerProcessHisto)
        std::printf("    %3u block(s): %llu process(es)\n", n, (unsigned long long)procs);
    if (flight.present) {
        std::printf("  kernel tier      %s (rank %u flight dump, last step %llu%s)\n",
                    obs::kernelTierName(flight.kernelTier), flight.rank,
                    (unsigned long long)flight.lastStep,
                    obs::isAaKernelTier(flight.kernelTier)
                        ? (flight.aaParity ? ", parity odd" : ", parity even")
                        : "");
    }
    return 0;
}
