/// walb_blockinfo — inspect a block-structure file (paper §2.2 format).
///
/// Usage: walb_blockinfo [--loads] <forest.walb>
///
/// Prints the domain, grid configuration, per-process workload statistics
/// and the level histogram, without loading any cell data — the file holds
/// only the metadata needed to reconstruct the distributed forest.
///
/// --loads switches to the per-rank load table: block count and weight sum
/// of every process plus the imbalance factor max/avg — the offline view
/// of the assignment the rebalance subsystem acts on at runtime.

#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "blockforest/SetupBlockForest.h"

namespace {

/// Per-rank block counts, workload sums and the max/avg imbalance factor.
int printLoads(const walb::bf::SetupBlockForest& forest, const char* path) {
    using namespace walb;
    const std::uint32_t ranks = forest.numProcesses();
    std::vector<std::uint64_t> work(ranks, 0);
    std::vector<uint_t> count(ranks, 0);
    for (const auto& b : forest.blocks()) {
        if (b.process >= ranks) {
            std::fprintf(stderr, "error: block assigned to process %u of %u\n", b.process,
                         ranks);
            return 1;
        }
        work[b.process] += b.workload;
        ++count[b.process];
    }
    const double total = double(forest.totalWorkload());
    const double avg = ranks > 0 ? total / double(ranks) : 0.0;

    std::printf("per-rank loads: %s\n", path);
    std::printf("%8s %10s %16s %10s\n", "rank", "blocks", "weight", "share");
    std::uint64_t maxWork = 0;
    for (std::uint32_t r = 0; r < ranks; ++r) {
        std::printf("%8u %10llu %16llu %9.2f%%\n", r, (unsigned long long)count[r],
                    (unsigned long long)work[r],
                    total > 0 ? 100.0 * double(work[r]) / total : 0.0);
        maxWork = std::max(maxWork, work[r]);
    }
    std::printf("total workload   %llu over %u rank(s)\n",
                (unsigned long long)forest.totalWorkload(), ranks);
    std::printf("imbalance factor %.4f (max/avg)\n",
                avg > 0 ? double(maxWork) / avg : 1.0);
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    using namespace walb;
    bool loads = false;
    const char* path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--loads") == 0)
            loads = true;
        else if (!path)
            path = argv[i];
        else
            path = ""; // more than one positional argument -> usage error
    }
    if (!path || path[0] == '\0') {
        std::fprintf(stderr, "usage: %s [--loads] <forest.walb>\n", argv[0]);
        return 2;
    }
    const auto forest = bf::SetupBlockForest::loadFromFile(path);
    if (!forest) {
        std::fprintf(stderr, "error: cannot read '%s'\n", path);
        return 1;
    }
    if (loads) return printLoads(*forest, path);

    const auto& cfg = forest->config();
    std::printf("walb block structure: %s\n", path);
    std::printf("  domain           [%g %g %g] .. [%g %g %g]\n", cfg.domain.min()[0],
                cfg.domain.min()[1], cfg.domain.min()[2], cfg.domain.max()[0],
                cfg.domain.max()[1], cfg.domain.max()[2]);
    std::printf("  root grid        %u x %u x %u, refinement level %u\n", cfg.rootBlocksX,
                cfg.rootBlocksY, cfg.rootBlocksZ, cfg.refinementLevel);
    std::printf("  cells per block  %u x %u x %u  (dx = %g)\n", cfg.cellsPerBlockX,
                cfg.cellsPerBlockY, cfg.cellsPerBlockZ, cfg.dx());
    std::printf("  blocks           %zu of %u possible (%.2f%% occupied)\n",
                forest->numBlocks(),
                cfg.blocksX() * cfg.blocksY() * cfg.blocksZ(),
                100.0 * double(forest->numBlocks()) /
                    double(cfg.blocksX()) / cfg.blocksY() / cfg.blocksZ());
    std::printf("  processes        %u\n", forest->numProcesses());
    std::printf("  total workload   %llu fluid cells (%.1f%% of block cells)\n",
                (unsigned long long)forest->totalWorkload(),
                100.0 * double(forest->totalWorkload()) /
                    (double(forest->numBlocks()) * double(cfg.cellsPerBlock())));

    const auto stats = forest->balanceStats();
    std::printf("  balance          imbalance %.3f, max %u blocks/process, %u empty "
                "processes\n",
                stats.imbalance, stats.maxBlocksPerProcess, stats.emptyProcesses);

    std::map<std::uint32_t, uint_t> blocksPerProcessHisto;
    {
        std::map<std::uint32_t, uint_t> count;
        for (const auto& b : forest->blocks()) ++count[b.process];
        for (const auto& [proc, n] : count) ++blocksPerProcessHisto[std::uint32_t(n)];
    }
    std::printf("  blocks/process histogram:\n");
    for (const auto& [n, procs] : blocksPerProcessHisto)
        std::printf("    %3u block(s): %llu process(es)\n", n, (unsigned long long)procs);
    return 0;
}
