/// walb_blockinfo — inspect a block-structure file (paper §2.2 format).
///
/// Usage: walb_blockinfo <forest.walb>
///
/// Prints the domain, grid configuration, per-process workload statistics
/// and the level histogram, without loading any cell data — the file holds
/// only the metadata needed to reconstruct the distributed forest.

#include <cstdio>
#include <map>

#include "blockforest/SetupBlockForest.h"

int main(int argc, char** argv) {
    using namespace walb;
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <forest.walb>\n", argv[0]);
        return 2;
    }
    const auto forest = bf::SetupBlockForest::loadFromFile(argv[1]);
    if (!forest) {
        std::fprintf(stderr, "error: cannot read '%s'\n", argv[1]);
        return 1;
    }

    const auto& cfg = forest->config();
    std::printf("walb block structure: %s\n", argv[1]);
    std::printf("  domain           [%g %g %g] .. [%g %g %g]\n", cfg.domain.min()[0],
                cfg.domain.min()[1], cfg.domain.min()[2], cfg.domain.max()[0],
                cfg.domain.max()[1], cfg.domain.max()[2]);
    std::printf("  root grid        %u x %u x %u, refinement level %u\n", cfg.rootBlocksX,
                cfg.rootBlocksY, cfg.rootBlocksZ, cfg.refinementLevel);
    std::printf("  cells per block  %u x %u x %u  (dx = %g)\n", cfg.cellsPerBlockX,
                cfg.cellsPerBlockY, cfg.cellsPerBlockZ, cfg.dx());
    std::printf("  blocks           %zu of %u possible (%.2f%% occupied)\n",
                forest->numBlocks(),
                cfg.blocksX() * cfg.blocksY() * cfg.blocksZ(),
                100.0 * double(forest->numBlocks()) /
                    double(cfg.blocksX()) / cfg.blocksY() / cfg.blocksZ());
    std::printf("  processes        %u\n", forest->numProcesses());
    std::printf("  total workload   %llu fluid cells (%.1f%% of block cells)\n",
                (unsigned long long)forest->totalWorkload(),
                100.0 * double(forest->totalWorkload()) /
                    (double(forest->numBlocks()) * double(cfg.cellsPerBlock())));

    const auto stats = forest->balanceStats();
    std::printf("  balance          imbalance %.3f, max %u blocks/process, %u empty "
                "processes\n",
                stats.imbalance, stats.maxBlocksPerProcess, stats.emptyProcesses);

    std::map<std::uint32_t, uint_t> blocksPerProcessHisto;
    {
        std::map<std::uint32_t, uint_t> count;
        for (const auto& b : forest->blocks()) ++count[b.process];
        for (const auto& [proc, n] : count) ++blocksPerProcessHisto[std::uint32_t(n)];
    }
    std::printf("  blocks/process histogram:\n");
    for (const auto& [n, procs] : blocksPerProcessHisto)
        std::printf("    %3u block(s): %llu process(es)\n", n, (unsigned long long)procs);
    return 0;
}
