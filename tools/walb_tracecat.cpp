/// walb_tracecat — validates and summarizes a Chrome trace_event JSON file
/// as emitted by obs::TraceRecorder::writeChromeJson (the export of a
/// DistributedSimulation phase trace).
///
///   walb_tracecat <trace.json>          validate + print summary
///   walb_tracecat --stats <trace.json>  validate + per-phase duration
///                                       statistics (count, total, mean,
///                                       p50/p95/p99); warns when the
///                                       recorder dropped events
///   walb_tracecat --selftest            record a synthetic trace, export it
///                                       to a temp file, then validate it
///                                       (CI smoke test wired into ctest)
///
/// Exit status is nonzero when the file does not parse, is not a trace
/// document, or contains malformed events — so CI can smoke-test trace
/// output with a single command.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/PerfDiag.h"
#include "obs/Report.h"
#include "obs/Trace.h"

using namespace walb;

namespace {

struct TraceSummary {
    std::size_t events = 0;
    std::size_t metadata = 0;
    std::set<int> tids;
    std::map<std::string, double> phaseTotalUs;
    std::map<std::string, std::size_t> phaseCounts;
    std::map<std::string, std::vector<double>> phaseDurationsUs;
    double spanBeginUs = 1e300;
    double spanEndUs = 0;
    std::uint64_t droppedEvents = 0; ///< recorder-side drops (otherData)
};

bool summarize(const obs::json::Value& root, TraceSummary& out, std::string& error) {
    if (!root.isObject()) {
        error = "root is not an object";
        return false;
    }
    const obs::json::Value* events = root.find("traceEvents");
    if (!events || !events->isArray()) {
        error = "missing 'traceEvents' array";
        return false;
    }
    for (const auto& e : events->array()) {
        if (!e.isObject()) {
            error = "trace event is not an object";
            return false;
        }
        const obs::json::Value* ph = e.find("ph");
        const obs::json::Value* name = e.find("name");
        if (!ph || !ph->isString() || !name || !name->isString()) {
            error = "trace event lacks 'ph'/'name'";
            return false;
        }
        if (ph->str() == "M") {
            ++out.metadata;
            continue;
        }
        if (ph->str() != "X") {
            error = "unexpected event phase type '" + ph->str() + "'";
            return false;
        }
        const obs::json::Value* ts = e.find("ts");
        const obs::json::Value* dur = e.find("dur");
        const obs::json::Value* tid = e.find("tid");
        if (!ts || !ts->isNumber() || !dur || !dur->isNumber() || !tid || !tid->isNumber()) {
            error = "complete event lacks numeric ts/dur/tid";
            return false;
        }
        if (dur->number() < 0) {
            error = "negative event duration";
            return false;
        }
        ++out.events;
        out.tids.insert(int(tid->number()));
        out.phaseTotalUs[name->str()] += dur->number();
        ++out.phaseCounts[name->str()];
        out.phaseDurationsUs[name->str()].push_back(dur->number());
        out.spanBeginUs = std::min(out.spanBeginUs, ts->number());
        out.spanEndUs = std::max(out.spanEndUs, ts->number() + dur->number());
    }
    if (const obs::json::Value* other = root.find("otherData"); other && other->isObject())
        if (const obs::json::Value* dropped = other->find("droppedEvents");
            dropped && dropped->isNumber())
            out.droppedEvents = std::uint64_t(dropped->number());
    return true;
}

int validateFile(const std::string& path, bool stats = false) {
    std::string text;
    if (!obs::readFileToString(path, text)) {
        std::fprintf(stderr, "walb_tracecat: cannot read '%s'\n", path.c_str());
        return 1;
    }
    bool ok = false;
    std::string error;
    const obs::json::Value root = obs::json::parse(text, ok, error);
    if (!ok) {
        std::fprintf(stderr, "walb_tracecat: JSON parse error: %s\n", error.c_str());
        return 1;
    }
    TraceSummary s;
    if (!summarize(root, s, error)) {
        std::fprintf(stderr, "walb_tracecat: invalid trace: %s\n", error.c_str());
        return 1;
    }
    std::printf("trace: %s\n", path.c_str());
    std::printf("  events: %zu (+%zu metadata), ranks/tids: %zu, span: %.3f ms\n", s.events,
                s.metadata, s.tids.size(),
                s.events ? (s.spanEndUs - s.spanBeginUs) / 1e3 : 0.0);
    if (s.droppedEvents > 0)
        std::fprintf(stderr,
                     "walb_tracecat: WARNING: recorder dropped %llu events — the trace "
                     "is truncated, statistics undercount\n",
                     (unsigned long long)s.droppedEvents);
    if (stats) {
        std::printf("  %-24s %10s %12s %12s %12s %12s %12s\n", "phase", "count",
                    "total[ms]", "mean[us]", "p50[us]", "p95[us]", "p99[us]");
        for (auto& [phase, durations] : s.phaseDurationsUs) {
            std::sort(durations.begin(), durations.end());
            const double totalUs = s.phaseTotalUs.at(phase);
            const std::size_t count = s.phaseCounts.at(phase);
            std::printf("  %-24s %10zu %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                        phase.c_str(), count, totalUs / 1e3, totalUs / double(count),
                        obs::sortedQuantile(durations, 0.50),
                        obs::sortedQuantile(durations, 0.95),
                        obs::sortedQuantile(durations, 0.99));
        }
        return 0;
    }
    std::printf("  %-24s %10s %14s\n", "phase", "count", "total[ms]");
    for (const auto& [phase, totalUs] : s.phaseTotalUs)
        std::printf("  %-24s %10zu %14.3f\n", phase.c_str(), s.phaseCounts.at(phase),
                    totalUs / 1e3);
    return 0;
}

int selftest() {
    // Record a synthetic two-rank trace with nested phases.
    obs::TraceRecorder r0(0), r1(1);
    for (int step = 0; step < 3; ++step) {
        for (auto* r : {&r0, &r1}) {
            obs::ScopedTrace step_(*r, "timeStep");
            { obs::ScopedTrace t(*r, "communication"); }
            { obs::ScopedTrace t(*r, "boundary"); }
            { obs::ScopedTrace t(*r, "collideStream"); }
        }
    }
    std::vector<obs::TraceEvent> events = r0.events();
    events.insert(events.end(), r1.events().begin(), r1.events().end());

    const std::string path =
        (std::filesystem::temp_directory_path() / "walb_tracecat_selftest.json").string();
    {
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "walb_tracecat: cannot write '%s'\n", path.c_str());
            return 1;
        }
        // Export with a nonzero dropped-events count so the selftest also
        // covers the truncation warning path of --stats.
        obs::TraceRecorder::writeChromeJson(os, events, "walb", 7);
    }
    int rc = validateFile(path);
    if (rc != 0) return rc;
    rc = validateFile(path, true);
    if (rc != 0) return rc;

    // The selftest additionally asserts the expected shape.
    std::string text;
    obs::readFileToString(path, text);
    bool ok = false;
    std::string error;
    TraceSummary s;
    const obs::json::Value root = obs::json::parse(text, ok, error);
    if (!ok || !summarize(root, s, error)) {
        std::fprintf(stderr, "walb_tracecat: selftest re-parse failed\n");
        return 1;
    }
    if (s.events != 24 || s.tids.size() != 2 || s.phaseTotalUs.size() != 4 ||
        s.droppedEvents != 7) {
        std::fprintf(stderr,
                     "walb_tracecat: selftest shape mismatch (events=%zu tids=%zu "
                     "phases=%zu dropped=%llu)\n",
                     s.events, s.tids.size(), s.phaseTotalUs.size(),
                     (unsigned long long)s.droppedEvents);
        return 1;
    }
    std::remove(path.c_str());
    std::printf("selftest OK\n");
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc == 2 && std::string(argv[1]) == "--selftest") return selftest();
    if (argc == 3 && std::string(argv[1]) == "--stats") return validateFile(argv[2], true);
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: walb_tracecat [--stats] <trace.json> | --selftest\n");
        return 2;
    }
    return validateFile(argv[1]);
}
