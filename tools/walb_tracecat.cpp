/// walb_tracecat — validates and summarizes a Chrome trace_event JSON file
/// as emitted by obs::TraceRecorder::writeChromeJson (the export of a
/// DistributedSimulation phase trace).
///
///   walb_tracecat <trace.json>    validate + print summary
///   walb_tracecat --selftest      record a synthetic trace, export it to a
///                                 temp file, then validate it (CI smoke
///                                 test wired into ctest)
///
/// Exit status is nonzero when the file does not parse, is not a trace
/// document, or contains malformed events — so CI can smoke-test trace
/// output with a single command.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "obs/Report.h"
#include "obs/Trace.h"

using namespace walb;

namespace {

struct TraceSummary {
    std::size_t events = 0;
    std::size_t metadata = 0;
    std::set<int> tids;
    std::map<std::string, double> phaseTotalUs;
    std::map<std::string, std::size_t> phaseCounts;
    double spanBeginUs = 1e300;
    double spanEndUs = 0;
};

bool summarize(const obs::json::Value& root, TraceSummary& out, std::string& error) {
    if (!root.isObject()) {
        error = "root is not an object";
        return false;
    }
    const obs::json::Value* events = root.find("traceEvents");
    if (!events || !events->isArray()) {
        error = "missing 'traceEvents' array";
        return false;
    }
    for (const auto& e : events->array()) {
        if (!e.isObject()) {
            error = "trace event is not an object";
            return false;
        }
        const obs::json::Value* ph = e.find("ph");
        const obs::json::Value* name = e.find("name");
        if (!ph || !ph->isString() || !name || !name->isString()) {
            error = "trace event lacks 'ph'/'name'";
            return false;
        }
        if (ph->str() == "M") {
            ++out.metadata;
            continue;
        }
        if (ph->str() != "X") {
            error = "unexpected event phase type '" + ph->str() + "'";
            return false;
        }
        const obs::json::Value* ts = e.find("ts");
        const obs::json::Value* dur = e.find("dur");
        const obs::json::Value* tid = e.find("tid");
        if (!ts || !ts->isNumber() || !dur || !dur->isNumber() || !tid || !tid->isNumber()) {
            error = "complete event lacks numeric ts/dur/tid";
            return false;
        }
        if (dur->number() < 0) {
            error = "negative event duration";
            return false;
        }
        ++out.events;
        out.tids.insert(int(tid->number()));
        out.phaseTotalUs[name->str()] += dur->number();
        ++out.phaseCounts[name->str()];
        out.spanBeginUs = std::min(out.spanBeginUs, ts->number());
        out.spanEndUs = std::max(out.spanEndUs, ts->number() + dur->number());
    }
    return true;
}

int validateFile(const std::string& path) {
    std::string text;
    if (!obs::readFileToString(path, text)) {
        std::fprintf(stderr, "walb_tracecat: cannot read '%s'\n", path.c_str());
        return 1;
    }
    bool ok = false;
    std::string error;
    const obs::json::Value root = obs::json::parse(text, ok, error);
    if (!ok) {
        std::fprintf(stderr, "walb_tracecat: JSON parse error: %s\n", error.c_str());
        return 1;
    }
    TraceSummary s;
    if (!summarize(root, s, error)) {
        std::fprintf(stderr, "walb_tracecat: invalid trace: %s\n", error.c_str());
        return 1;
    }
    std::printf("trace: %s\n", path.c_str());
    std::printf("  events: %zu (+%zu metadata), ranks/tids: %zu, span: %.3f ms\n", s.events,
                s.metadata, s.tids.size(),
                s.events ? (s.spanEndUs - s.spanBeginUs) / 1e3 : 0.0);
    std::printf("  %-24s %10s %14s\n", "phase", "count", "total[ms]");
    for (const auto& [phase, totalUs] : s.phaseTotalUs)
        std::printf("  %-24s %10zu %14.3f\n", phase.c_str(), s.phaseCounts.at(phase),
                    totalUs / 1e3);
    return 0;
}

int selftest() {
    // Record a synthetic two-rank trace with nested phases.
    obs::TraceRecorder r0(0), r1(1);
    for (int step = 0; step < 3; ++step) {
        for (auto* r : {&r0, &r1}) {
            obs::ScopedTrace step_(*r, "timeStep");
            { obs::ScopedTrace t(*r, "communication"); }
            { obs::ScopedTrace t(*r, "boundary"); }
            { obs::ScopedTrace t(*r, "collideStream"); }
        }
    }
    std::vector<obs::TraceEvent> events = r0.events();
    events.insert(events.end(), r1.events().begin(), r1.events().end());

    const std::string path =
        (std::filesystem::temp_directory_path() / "walb_tracecat_selftest.json").string();
    {
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "walb_tracecat: cannot write '%s'\n", path.c_str());
            return 1;
        }
        obs::TraceRecorder::writeChromeJson(os, events);
    }
    const int rc = validateFile(path);
    if (rc != 0) return rc;

    // The selftest additionally asserts the expected shape.
    std::string text;
    obs::readFileToString(path, text);
    bool ok = false;
    std::string error;
    TraceSummary s;
    const obs::json::Value root = obs::json::parse(text, ok, error);
    if (!ok || !summarize(root, s, error)) {
        std::fprintf(stderr, "walb_tracecat: selftest re-parse failed\n");
        return 1;
    }
    if (s.events != 24 || s.tids.size() != 2 || s.phaseTotalUs.size() != 4) {
        std::fprintf(stderr,
                     "walb_tracecat: selftest shape mismatch (events=%zu tids=%zu "
                     "phases=%zu)\n",
                     s.events, s.tids.size(), s.phaseTotalUs.size());
        return 1;
    }
    std::remove(path.c_str());
    std::printf("selftest OK\n");
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc == 2 && std::string(argv[1]) == "--selftest") return selftest();
    if (argc != 2) {
        std::fprintf(stderr, "usage: walb_tracecat <trace.json> | --selftest\n");
        return 2;
    }
    return validateFile(argv[1]);
}
