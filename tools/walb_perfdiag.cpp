/// walb_perfdiag — reads flight-recorder `.wfr` dumps and `--metrics-json`
/// artifacts and turns them into per-phase breakdowns, cross-rank straggler
/// timelines and pass/fail gates:
///
///   walb_perfdiag report <a.wfr> [b.wfr ...]
///       per-rank phase breakdown (collide/pack/exchange/boundary/shell),
///       step-time percentiles, and — given several ranks — the
///       reconstructed straggler timeline (EWMA + median/MAD verdicts,
///       printed whenever the flagged set changes).
///
///   walb_perfdiag json <a.wfr> [b.wfr ...]
///       the same summary as one JSON document on stdout.
///
///   walb_perfdiag check <artifact.json> [--require PATH]...
///                       [--min PATH=V]... [--max PATH=V]...
///       gates a metrics/bench JSON artifact: every --require path must
///       exist, every --min/--max bound must hold. Nonzero exit on the
///       first violation — the engine behind bench/perf_gate.sh.
///
///   walb_perfdiag compare <baseline.json> <candidate.json>
///                         [--tol-rel R] [--key PATH[:R]]...
///       compares numeric values at the given JSON paths (dotted, e.g.
///       gauges.sim.mlups — longest-key match handles dots inside metric
///       names); a key fails when |candidate - baseline| exceeds the
///       relative tolerance (default --tol-rel, per-key override via
///       PATH:R).
///
///   walb_perfdiag --selftest
///       synthesizes a two-rank run with a 2x straggler, round-trips it
///       through dump/read, and exercises report/check/compare (CI smoke).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "obs/PerfDiag.h"
#include "obs/Report.h"

using namespace walb;

namespace {

// ---- .wfr loading ----------------------------------------------------------

struct LoadedDump {
    std::string path;
    obs::FlightRecorder::Dump dump;
};

/// Post-shrink tolerance: a self-healing run dumps one `.wfr` per rank *per
/// epoch* (names carry the step), so a kill-and-heal history hands us several
/// files for the same rank, and files whose recorded world size disagrees.
/// Merge everything a rank left behind into one sample stream, sorted by
/// step; on a duplicate step (pre-failure dump overlapping the rewound
/// replay) the later record wins — it is the one the run actually kept.
void mergeByRank(std::vector<LoadedDump>& dumps) {
    std::vector<LoadedDump> merged;
    for (LoadedDump& d : dumps) {
        auto it = std::find_if(merged.begin(), merged.end(), [&](const LoadedDump& m) {
            return m.dump.rank == d.dump.rank;
        });
        if (it == merged.end()) {
            merged.push_back(std::move(d));
            continue;
        }
        it->path += " " + d.path;
        it->dump.worldSize = std::min(it->dump.worldSize, d.dump.worldSize);
        for (const obs::StepSample& s : d.dump.samples) it->dump.samples.push_back(s);
    }
    for (LoadedDump& m : merged) {
        std::stable_sort(m.dump.samples.begin(), m.dump.samples.end(),
                         [](const obs::StepSample& a, const obs::StepSample& b) {
                             return a.step < b.step;
                         });
        std::vector<obs::StepSample> unique;
        unique.reserve(m.dump.samples.size());
        for (const obs::StepSample& s : m.dump.samples) {
            if (!unique.empty() && unique.back().step == s.step) unique.back() = s;
            else unique.push_back(s);
        }
        m.dump.samples = std::move(unique);
    }
    dumps = std::move(merged);
}

bool loadDumps(const std::vector<std::string>& paths, std::vector<LoadedDump>& out) {
    for (const auto& path : paths) {
        LoadedDump d;
        d.path = path;
        std::string err;
        if (!obs::FlightRecorder::read(path, d.dump, &err)) {
            std::fprintf(stderr, "walb_perfdiag: %s\n", err.c_str());
            return false;
        }
        out.push_back(std::move(d));
    }
    std::sort(out.begin(), out.end(), [](const LoadedDump& a, const LoadedDump& b) {
        return a.dump.rank < b.dump.rank;
    });
    mergeByRank(out);
    return true;
}

struct RankSummary {
    std::uint32_t rank = 0;
    std::size_t steps = 0;
    double collide = 0, shell = 0, boundary = 0, pack = 0, exchange = 0, total = 0;
    double meanMlups = 0, maxImbalance = 0;
    double p50 = 0, p95 = 0, p99 = 0;
    std::uint64_t bytes = 0, messages = 0;
    std::uint8_t kernelTier = 0;  ///< from the most recent sample
    std::uint8_t lastAaParity = 0;
};

RankSummary summarizeRank(const LoadedDump& d) {
    RankSummary s;
    s.rank = d.dump.rank;
    s.steps = d.dump.samples.size();
    std::vector<double> stepSeconds;
    stepSeconds.reserve(s.steps);
    double mlupsSum = 0;
    for (const obs::StepSample& x : d.dump.samples) {
        s.collide += x.collideSeconds;
        s.shell += x.shellSeconds;
        s.boundary += x.boundarySeconds;
        s.pack += x.packSeconds;
        s.exchange += x.exchangeSeconds;
        s.total += x.totalSeconds;
        s.bytes += x.bytesMoved;
        s.messages += x.messages;
        mlupsSum += x.mlups;
        s.maxImbalance = std::max(s.maxImbalance, x.imbalance);
        stepSeconds.push_back(x.totalSeconds);
    }
    if (s.steps) {
        s.meanMlups = mlupsSum / double(s.steps);
        std::sort(stepSeconds.begin(), stepSeconds.end());
        s.p50 = obs::sortedQuantile(stepSeconds, 0.50);
        s.p95 = obs::sortedQuantile(stepSeconds, 0.95);
        s.p99 = obs::sortedQuantile(stepSeconds, 0.99);
        s.kernelTier = d.dump.samples.back().kernelTier;
        s.lastAaParity = d.dump.samples.back().aaParity;
    }
    return s;
}

/// One reconstructed detection epoch of the offline straggler timeline.
struct TimelinePoint {
    std::uint64_t step = 0;
    std::size_t participants = 0; ///< ranks that recorded this step
    obs::StragglerVerdict verdict;
};

/// Re-runs the live detector's EWMA + median/MAD judgment over the recorded
/// per-step times of all ranks: the post-mortem equivalent of what
/// enableStragglerDetection computes in-flight. Like the live detector it
/// smooths each rank's *work* share (step minus exchange wait) — bulk
/// synchronization equalizes total step times across ranks, a straggler is
/// only visible in the non-wait share.
std::vector<TimelinePoint> stragglerTimeline(const std::vector<LoadedDump>& dumps) {
    std::vector<TimelinePoint> timeline;
    if (dumps.size() < 2) return timeline;
    // step -> per-dump seconds. A post-shrink history legitimately loses
    // ranks mid-stream, so any step with at least two participants is
    // judged — over exactly the ranks that recorded it.
    std::map<std::uint64_t, std::map<std::size_t, double>> byStep;
    for (std::size_t i = 0; i < dumps.size(); ++i)
        for (const obs::StepSample& s : dumps[i].dump.samples)
            byStep[s.step][i] = std::max(s.totalSeconds - s.exchangeSeconds, 0.0);

    const obs::StragglerDetector judge;
    std::vector<double> ewma(dumps.size(), 0.0);
    std::vector<bool> seeded(dumps.size(), false);
    for (const auto& [step, perRank] : byStep) {
        for (const auto& [i, seconds] : perRank) {
            ewma[i] = seeded[i] ? judge.alpha() * seconds + (1.0 - judge.alpha()) * ewma[i]
                                : seconds;
            seeded[i] = true;
        }
        if (perRank.size() < 2) continue;
        std::vector<double> live;
        std::vector<std::size_t> who;
        live.reserve(perRank.size());
        who.reserve(perRank.size());
        for (const auto& [i, seconds] : perRank) {
            (void)seconds;
            live.push_back(ewma[i]);
            who.push_back(i);
        }
        TimelinePoint p;
        p.step = step;
        p.participants = perRank.size();
        p.verdict = judge.judge(live, step);
        for (int& i : p.verdict.stragglers) i = int(who[std::size_t(i)]);
        timeline.push_back(std::move(p));
    }
    return timeline;
}

std::string rankList(const std::vector<LoadedDump>& dumps, const std::vector<int>& idx) {
    std::string s;
    for (int i : idx)
        s += (s.empty() ? "" : ",") + std::to_string(dumps[std::size_t(i)].dump.rank);
    return s.empty() ? "-" : s;
}

int reportDumps(const std::vector<std::string>& paths) {
    std::vector<LoadedDump> dumps;
    if (!loadDumps(paths, dumps)) return 1;
    std::printf("%-6s %8s %12s %12s %12s %12s %12s %10s %12s %8s %6s\n", "rank",
                "steps", "collide[s]", "pack[s]", "exchange[s]", "boundary[s]",
                "shell[s]", "MLUP/s", "p95step[s]", "tier", "parity");
    for (const LoadedDump& d : dumps) {
        const RankSummary s = summarizeRank(d);
        std::printf("%-6u %8zu %12.4f %12.4f %12.4f %12.4f %12.4f %10.2f %12.3e %8s %6s\n",
                    s.rank, s.steps, s.collide, s.pack, s.exchange, s.boundary, s.shell,
                    s.meanMlups, s.p95, obs::kernelTierName(s.kernelTier),
                    obs::isAaKernelTier(s.kernelTier) ? (s.lastAaParity ? "odd" : "even")
                                                      : "-");
    }
    const auto timeline = stragglerTimeline(dumps);
    if (!timeline.empty()) {
        std::printf("straggler timeline (EWMA + median/MAD, %zu ranks):\n", dumps.size());
        std::vector<int> lastFlagged{-1}; // sentinel: force the first line
        std::size_t lastParticipants = timeline.front().participants;
        std::size_t flaggedEpochs = 0;
        for (const TimelinePoint& p : timeline) {
            if (p.participants != lastParticipants) {
                std::printf("  step %8llu: rank count changed %zu -> %zu "
                            "(post-shrink history)\n",
                            (unsigned long long)p.step, lastParticipants,
                            p.participants);
                lastParticipants = p.participants;
            }
            if (!p.verdict.stragglers.empty()) ++flaggedEpochs;
            if (p.verdict.stragglers == lastFlagged) continue;
            lastFlagged = p.verdict.stragglers;
            std::printf("  step %8llu: stragglers {%s}  median %.3e s  mad %.3e s\n",
                        (unsigned long long)p.step,
                        rankList(dumps, p.verdict.stragglers).c_str(), p.verdict.median,
                        p.verdict.mad);
        }
        std::printf("  %zu of %zu judged steps had a flagged rank\n", flaggedEpochs,
                    timeline.size());
    }
    return 0;
}

int jsonDumps(const std::vector<std::string>& paths) {
    std::vector<LoadedDump> dumps;
    if (!loadDumps(paths, dumps)) return 1;
    const auto timeline = stragglerTimeline(dumps);
    std::size_t flaggedEpochs = 0;
    std::set<std::uint32_t> flaggedRanks;
    for (const TimelinePoint& p : timeline) {
        if (p.verdict.stragglers.empty()) continue;
        ++flaggedEpochs;
        for (int i : p.verdict.stragglers)
            flaggedRanks.insert(dumps[std::size_t(i)].dump.rank);
    }
    obs::json::Writer w(std::cout);
    w.beginObject();
    w.key("ranks").beginArray();
    for (const LoadedDump& d : dumps) {
        const RankSummary s = summarizeRank(d);
        w.beginObject();
        w.kv("rank", std::uint64_t(s.rank)).kv("steps", std::uint64_t(s.steps));
        w.kv("collide_seconds", s.collide).kv("pack_seconds", s.pack);
        w.kv("exchange_seconds", s.exchange).kv("boundary_seconds", s.boundary);
        w.kv("shell_seconds", s.shell).kv("total_seconds", s.total);
        w.kv("mean_mlups", s.meanMlups).kv("max_imbalance", s.maxImbalance);
        w.kv("p50_step_seconds", s.p50).kv("p95_step_seconds", s.p95);
        w.kv("p99_step_seconds", s.p99);
        w.kv("bytes_moved", s.bytes).kv("messages", s.messages);
        w.kv("kernel_tier", obs::kernelTierName(s.kernelTier));
        w.kv("aa_parity", std::uint64_t(s.lastAaParity));
        w.endObject();
    }
    w.endArray();
    std::size_t minJudged = 0, maxJudged = 0;
    for (const TimelinePoint& p : timeline) {
        minJudged = minJudged ? std::min(minJudged, p.participants) : p.participants;
        maxJudged = std::max(maxJudged, p.participants);
    }
    w.kv("judged_steps", std::uint64_t(timeline.size()));
    w.kv("min_judged_ranks", std::uint64_t(minJudged));
    w.kv("max_judged_ranks", std::uint64_t(maxJudged));
    w.kv("flagged_steps", std::uint64_t(flaggedEpochs));
    w.key("flagged_ranks").beginArray();
    for (std::uint32_t r : flaggedRanks) w.value(std::uint64_t(r));
    w.endArray();
    w.endObject();
    std::printf("\n");
    return 0;
}

// ---- artifact gating -------------------------------------------------------

/// Dotted-path lookup tolerant of dots *inside* keys (metric names like
/// "sim.mlups"): at each object, the longest prefix of the remaining path
/// that names an existing member wins.
const obs::json::Value* lookupPath(const obs::json::Value& root, const std::string& path) {
    const obs::json::Value* v = &root;
    std::string rest = path;
    while (!rest.empty()) {
        if (!v->isObject()) return nullptr;
        const obs::json::Value* next = v->find(rest);
        if (next) return next;
        std::size_t dot = rest.rfind('.');
        while (dot != std::string::npos) {
            next = v->find(rest.substr(0, dot));
            if (next) break;
            dot = rest.rfind('.', dot == 0 ? std::string::npos : dot - 1);
        }
        if (!next || dot == std::string::npos) return nullptr;
        v = next;
        rest = rest.substr(dot + 1);
    }
    return v;
}

bool parseArtifact(const std::string& path, obs::json::Value& out) {
    std::string text;
    if (!obs::readFileToString(path, text)) {
        std::fprintf(stderr, "walb_perfdiag: cannot read '%s'\n", path.c_str());
        return false;
    }
    bool ok = false;
    std::string error;
    out = obs::json::parse(text, ok, error);
    if (!ok) {
        std::fprintf(stderr, "walb_perfdiag: '%s': JSON parse error: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    return true;
}

int checkArtifact(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: walb_perfdiag check <artifact.json> [--require P] "
                             "[--min P=V] [--max P=V]...\n");
        return 2;
    }
    obs::json::Value root;
    if (!parseArtifact(argv[2], root)) return 1;

    int failures = 0;
    auto number = [&](const std::string& path, double& out) {
        const obs::json::Value* v = lookupPath(root, path);
        if (!v || !v->isNumber()) return false;
        out = v->number();
        return true;
    };
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--require" || arg == "--min" || arg == "--max") && i + 1 < argc) {
            const std::string spec = argv[++i];
            if (arg == "--require") {
                if (lookupPath(root, spec)) {
                    std::printf("PASS require %s\n", spec.c_str());
                } else {
                    std::printf("FAIL require %s (missing)\n", spec.c_str());
                    ++failures;
                }
                continue;
            }
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos) {
                std::fprintf(stderr, "walb_perfdiag: %s expects PATH=VALUE, got '%s'\n",
                             arg.c_str(), spec.c_str());
                return 2;
            }
            const std::string path = spec.substr(0, eq);
            const double bound = std::stod(spec.substr(eq + 1));
            double v = 0;
            if (!number(path, v)) {
                std::printf("FAIL %s %s (missing or non-numeric)\n", arg.c_str() + 2,
                            path.c_str());
                ++failures;
                continue;
            }
            const bool ok = arg == "--min" ? v >= bound : v <= bound;
            std::printf("%s %s %s = %g (bound %g)\n", ok ? "PASS" : "FAIL",
                        arg.c_str() + 2, path.c_str(), v, bound);
            if (!ok) ++failures;
        } else {
            std::fprintf(stderr, "walb_perfdiag: unknown check option '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (failures) std::printf("%d constraint(s) failed\n", failures);
    return failures ? 1 : 0;
}

int compareArtifacts(int argc, char** argv) {
    if (argc < 4) {
        std::fprintf(stderr, "usage: walb_perfdiag compare <baseline.json> "
                             "<candidate.json> [--tol-rel R] [--key PATH[:R]]...\n");
        return 2;
    }
    obs::json::Value base, cand;
    if (!parseArtifact(argv[2], base) || !parseArtifact(argv[3], cand)) return 1;

    double defaultTol = 0.5;
    std::vector<std::pair<std::string, double>> keys;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tol-rel" && i + 1 < argc) {
            defaultTol = std::stod(argv[++i]);
        } else if (arg == "--key" && i + 1 < argc) {
            std::string spec = argv[++i];
            double tol = -1;
            const std::size_t colon = spec.rfind(':');
            // PATH:R only when the suffix parses as a number (metric names
            // never contain ':').
            if (colon != std::string::npos) {
                try {
                    std::size_t used = 0;
                    tol = std::stod(spec.substr(colon + 1), &used);
                    if (used == spec.size() - colon - 1) spec = spec.substr(0, colon);
                    else tol = -1;
                } catch (...) {
                    tol = -1;
                }
            }
            keys.emplace_back(spec, tol);
        } else {
            std::fprintf(stderr, "walb_perfdiag: unknown compare option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    int failures = 0;
    for (const auto& [path, tolOverride] : keys) {
        const double tol = tolOverride >= 0 ? tolOverride : defaultTol;
        const obs::json::Value* b = lookupPath(base, path);
        const obs::json::Value* c = lookupPath(cand, path);
        if (!b || !b->isNumber() || !c || !c->isNumber()) {
            std::printf("FAIL %s (missing or non-numeric in %s)\n", path.c_str(),
                        !b || !b->isNumber() ? "baseline" : "candidate");
            ++failures;
            continue;
        }
        const double bv = b->number(), cv = c->number();
        const double denom = std::max(std::abs(bv), 1e-300);
        const double rel = std::abs(cv - bv) / denom;
        const bool ok = rel <= tol;
        std::printf("%s %s: baseline %g, candidate %g (rel dev %.3f, tol %.3f)\n",
                    ok ? "PASS" : "FAIL", path.c_str(), bv, cv, rel, tol);
        if (!ok) ++failures;
    }
    if (failures) std::printf("%d key(s) outside tolerance\n", failures);
    return failures ? 1 : 0;
}

// ---- selftest --------------------------------------------------------------

int selftest() {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path();

    // Synthesize a four-rank run: rank 3 turns into a 2x straggler at
    // step 30. (Four ranks, not two — with two the straggler drags the
    // fleet median up with it and no median-relative detector can fire.)
    constexpr int kRanks = 4, kSlowRank = 3;
    std::vector<std::string> wfrPaths;
    for (int rank = 0; rank < kRanks; ++rank) {
        obs::FlightRecorder fr(128);
        for (std::uint64_t step = 0; step < 60; ++step) {
            obs::StepSample s;
            s.step = step;
            s.totalSeconds = (rank == kSlowRank && step >= 30) ? 2e-3 : 1e-3;
            s.collideSeconds = 0.8 * s.totalSeconds;
            s.packSeconds = 0.1 * s.totalSeconds;
            s.exchangeSeconds = 0.1 * s.totalSeconds;
            s.mlups = 1.0 / s.totalSeconds / 1e6;
            s.bytesMoved = 1024;
            s.messages = 2;
            fr.record(s);
        }
        const std::string path =
            (dir / ("walb_perfdiag_selftest.rank" + std::to_string(rank) + ".wfr"))
                .string();
        std::string err;
        if (!fr.dump(path, rank, kRanks, &err)) {
            std::fprintf(stderr, "walb_perfdiag: selftest dump failed: %s\n", err.c_str());
            return 1;
        }
        wfrPaths.push_back(path);
    }

    // Round trip + timeline: the slow rank must be flagged after its
    // slowdown, and nobody else ever.
    std::vector<LoadedDump> dumps;
    if (!loadDumps(wfrPaths, dumps)) return 1;
    if (dumps[0].dump.worldSize != kRanks ||
        dumps[kSlowRank].dump.samples.size() != 60 ||
        dumps[kSlowRank].dump.samples[59].totalSeconds != 2e-3) {
        std::fprintf(stderr, "walb_perfdiag: selftest roundtrip mismatch\n");
        return 1;
    }
    const auto timeline = stragglerTimeline(dumps);
    std::int64_t firstFlag = -1;
    for (const TimelinePoint& p : timeline)
        if (!p.verdict.stragglers.empty()) {
            if (firstFlag < 0) firstFlag = std::int64_t(p.step);
            if (p.verdict.stragglers != std::vector<int>{kSlowRank}) {
                std::fprintf(stderr, "walb_perfdiag: selftest flagged the wrong rank\n");
                return 1;
            }
        }
    if (firstFlag < 30 || firstFlag > 50) {
        std::fprintf(stderr, "walb_perfdiag: selftest straggler onset at %lld, not in "
                             "[30, 50]\n",
                     (long long)firstFlag);
        return 1;
    }
    if (reportDumps(wfrPaths) != 0) return 1;

    // Post-shrink tolerance: after a self-healing recovery the survivors
    // (ranks 0..2, world size 3) dump a *second* file each covering the
    // continued steps. The merged history must still be judged across the
    // rank-count change instead of silently stopping at the failure step.
    {
        std::vector<std::string> allPaths = wfrPaths;
        std::vector<std::string> shrunkPaths;
        for (int rank = 0; rank < kRanks - 1; ++rank) {
            obs::FlightRecorder fr(128);
            for (std::uint64_t step = 60; step < 80; ++step) {
                obs::StepSample s;
                s.step = step;
                s.totalSeconds = 1e-3;
                s.collideSeconds = 0.8 * s.totalSeconds;
                s.packSeconds = 0.1 * s.totalSeconds;
                s.exchangeSeconds = 0.1 * s.totalSeconds;
                s.mlups = 1.0 / s.totalSeconds / 1e6;
                fr.record(s);
            }
            const std::string path =
                (dir /
                 ("walb_perfdiag_selftest_shrunk.rank" + std::to_string(rank) + ".wfr"))
                    .string();
            std::string err2;
            if (!fr.dump(path, rank, kRanks - 1, &err2)) {
                std::fprintf(stderr, "walb_perfdiag: selftest shrink dump failed: %s\n",
                             err2.c_str());
                return 1;
            }
            shrunkPaths.push_back(path);
            allPaths.push_back(path);
        }
        std::vector<LoadedDump> mergedDumps;
        if (!loadDumps(allPaths, mergedDumps)) return 1;
        if (mergedDumps.size() != std::size_t(kRanks)) {
            std::fprintf(stderr,
                         "walb_perfdiag: selftest merge produced %zu rank streams, "
                         "expected %d\n",
                         mergedDumps.size(), kRanks);
            return 1;
        }
        const auto shrunkTimeline = stragglerTimeline(mergedDumps);
        bool judgedPostShrink = false;
        for (const TimelinePoint& p : shrunkTimeline)
            if (p.step >= 60 && p.participants == std::size_t(kRanks - 1))
                judgedPostShrink = true;
        if (!judgedPostShrink) {
            std::fprintf(stderr, "walb_perfdiag: selftest did not judge post-shrink "
                                 "steps with a reduced rank count\n");
            return 1;
        }
        for (const auto& p : shrunkPaths) std::remove(p.c_str());
    }

    // A corrupted dump must be rejected by the CRC, not parsed into garbage.
    {
        std::fstream f(wfrPaths[0],
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(20);
        f.put(char(0x5a));
    }
    obs::FlightRecorder::Dump corrupt;
    std::string err;
    if (obs::FlightRecorder::read(wfrPaths[0], corrupt, &err)) {
        std::fprintf(stderr, "walb_perfdiag: selftest accepted a corrupted .wfr\n");
        return 1;
    }

    // Gate engine: compare must pass on close values and fail on a 2x drop.
    const std::string basePath = (dir / "walb_perfdiag_base.json").string();
    const std::string goodPath = (dir / "walb_perfdiag_good.json").string();
    const std::string badPath = (dir / "walb_perfdiag_bad.json").string();
    auto writeArtifact = [](const std::string& path, double mlups, double stragglers) {
        std::ofstream os(path, std::ios::binary);
        os << "{\"gauges\": {\"sim.mlups\": " << mlups
           << ", \"perf.straggler_ranks\": " << stragglers << "}}\n";
    };
    writeArtifact(basePath, 100.0, 1.0);
    writeArtifact(goodPath, 95.0, 1.0);
    writeArtifact(badPath, 40.0, 0.0);
    {
        char* argvGood[] = {(char*)"walb_perfdiag", (char*)"compare",
                            (char*)basePath.c_str(), (char*)goodPath.c_str(),
                            (char*)"--key", (char*)"gauges.sim.mlups:0.25"};
        if (compareArtifacts(6, argvGood) != 0) {
            std::fprintf(stderr, "walb_perfdiag: selftest compare rejected a good run\n");
            return 1;
        }
        char* argvBad[] = {(char*)"walb_perfdiag", (char*)"compare",
                           (char*)basePath.c_str(), (char*)badPath.c_str(),
                           (char*)"--key", (char*)"gauges.sim.mlups:0.25"};
        if (compareArtifacts(6, argvBad) == 0) {
            std::fprintf(stderr, "walb_perfdiag: selftest compare accepted a 2.5x "
                                 "regression\n");
            return 1;
        }
        char* argvCheck[] = {(char*)"walb_perfdiag", (char*)"check",
                             (char*)basePath.c_str(), (char*)"--require",
                             (char*)"gauges.perf.straggler_ranks", (char*)"--min",
                             (char*)"gauges.sim.mlups=50"};
        if (checkArtifact(7, argvCheck) != 0) {
            std::fprintf(stderr, "walb_perfdiag: selftest check failed a good artifact\n");
            return 1;
        }
        char* argvCheckBad[] = {(char*)"walb_perfdiag", (char*)"check",
                                (char*)badPath.c_str(), (char*)"--min",
                                (char*)"gauges.sim.mlups=50"};
        if (checkArtifact(5, argvCheckBad) == 0) {
            std::fprintf(stderr, "walb_perfdiag: selftest check passed a bad artifact\n");
            return 1;
        }
    }

    for (const auto& p : wfrPaths) std::remove(p.c_str());
    std::remove(basePath.c_str());
    std::remove(goodPath.c_str());
    std::remove(badPath.c_str());
    std::printf("selftest OK\n");
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    if (argc >= 2) {
        const std::string mode = argv[1];
        if (mode == "--selftest") return selftest();
        if (mode == "check") return checkArtifact(argc, argv);
        if (mode == "compare") return compareArtifacts(argc, argv);
        if ((mode == "report" || mode == "json") && argc >= 3) {
            std::vector<std::string> paths(argv + 2, argv + argc);
            return mode == "report" ? reportDumps(paths) : jsonDumps(paths);
        }
    }
    std::fprintf(stderr,
                 "usage: walb_perfdiag report <a.wfr> [b.wfr ...]\n"
                 "       walb_perfdiag json <a.wfr> [b.wfr ...]\n"
                 "       walb_perfdiag check <artifact.json> [--require P] [--min P=V] "
                 "[--max P=V]...\n"
                 "       walb_perfdiag compare <baseline.json> <candidate.json> "
                 "[--tol-rel R] [--key PATH[:R]]...\n"
                 "       walb_perfdiag --selftest\n");
    return 2;
}
