/// walb_treegen — generate a synthetic coronary artery tree (the repo's
/// CTA stand-in) and export its surface mesh and metadata.
///
/// Usage: walb_treegen <seed> <out-prefix> [meshResolution=96]
///
/// Writes <prefix>.off (colored surface mesh: red inlet, green outlets)
/// and <prefix>.vtk (ParaView PolyData) and prints the tree statistics.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "geometry/CoronaryTree.h"
#include "geometry/MeshIO.h"
#include "io/VtkOutput.h"

int main(int argc, char** argv) {
    using namespace walb;
    if (argc < 3 || argc > 4) {
        std::fprintf(stderr, "usage: %s <seed> <out-prefix> [meshResolution=96]\n", argv[0]);
        return 2;
    }
    geometry::CoronaryTreeParams params;
    params.seed = std::strtoull(argv[1], nullptr, 10);
    params.bounds = AABB(0, 0, 0, 1, 1, 1);
    const unsigned resolution =
        argc == 4 ? unsigned(std::strtoul(argv[3], nullptr, 10)) : 96u;

    const auto tree = geometry::CoronaryTree::generate(params);
    std::printf("tree (seed %llu): %zu segments, %zu outlets\n",
                (unsigned long long)params.seed, tree.segments().size(), tree.numLeaves());
    std::printf("  inlet radius %.4f at (%.3f, %.3f, %.3f)\n", tree.inletRadius(),
                tree.inletCenter()[0], tree.inletCenter()[1], tree.inletCenter()[2]);
    std::printf("  vessel volume %.5f = %.2f%% of the bounding box\n", tree.vesselVolume(),
                100.0 * tree.boundingBoxFluidFraction());

    unsigned maxDepth = 0;
    real_t minRadius = params.rootRadius;
    for (const auto& s : tree.segments()) {
        maxDepth = std::max(maxDepth, s.depth);
        minRadius = std::min(minRadius, s.radius);
    }
    std::printf("  %u bifurcation generations, finest vessel radius %.4f\n", maxDepth,
                minRadius);

    const auto mesh = tree.surfaceMesh(resolution);
    std::printf("surface mesh at resolution %u: %zu vertices, %zu triangles, area %.4f\n",
                resolution, mesh.numVertices(), mesh.numTriangles(), mesh.surfaceArea());

    const std::string prefix = argv[2];
    if (!geometry::writeOff(prefix + ".off", mesh)) {
        std::fprintf(stderr, "error: cannot write %s.off\n", prefix.c_str());
        return 1;
    }
    if (!io::writeVtkMesh(prefix + ".vtk", mesh)) {
        std::fprintf(stderr, "error: cannot write %s.vtk\n", prefix.c_str());
        return 1;
    }
    std::printf("wrote %s.off and %s.vtk\n", prefix.c_str(), prefix.c_str());
    return 0;
}
