/// walb_voxelize — voxelize a triangle surface mesh to a VTK image.
///
/// Usage: walb_voxelize <mesh.off|mesh.stl> <resolution> <out.vti>
///
/// Runs the paper's geometry pipeline on a single block: load the surface,
/// build the triangle octree, evaluate the pseudonormal signed distance at
/// every cell center of an axis-aligned grid around the mesh, mark fluid
/// cells and the boundary hull, and write the flags for inspection in
/// ParaView.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "geometry/MeshIO.h"
#include "geometry/Voxelizer.h"
#include "io/VtkOutput.h"
#include "lbm/Boundary.h"

int main(int argc, char** argv) {
    using namespace walb;
    if (argc != 4) {
        std::fprintf(stderr, "usage: %s <mesh.off|mesh.stl> <resolution> <out.vti>\n",
                     argv[0]);
        return 2;
    }
    const std::string meshPath = argv[1];
    const auto resolution = cell_idx_t(std::strtol(argv[2], nullptr, 10));
    if (resolution < 4 || resolution > 1024) {
        std::fprintf(stderr, "error: resolution must be in [4, 1024]\n");
        return 2;
    }

    geometry::TriangleMesh mesh;
    const bool ok = meshPath.size() > 4 && meshPath.substr(meshPath.size() - 4) == ".stl"
                        ? geometry::readStlBinary(meshPath, mesh)
                        : geometry::readOff(meshPath, mesh);
    if (!ok || mesh.numTriangles() == 0) {
        std::fprintf(stderr, "error: cannot read mesh '%s'\n", meshPath.c_str());
        return 1;
    }
    std::printf("mesh: %zu vertices, %zu triangles, area %.4g\n", mesh.numVertices(),
                mesh.numTriangles(), mesh.surfaceArea());

    geometry::MeshDistance distance(mesh);
    const AABB bounds = mesh.boundingBox();
    const real_t longest = std::max({bounds.xSize(), bounds.ySize(), bounds.zSize()});
    const real_t dx = longest / real_c(resolution);
    const AABB domain = bounds.expanded(2 * dx);

    const auto n = [&](real_t s) { return std::max<cell_idx_t>(1, cell_idx_t(s / dx)); };
    const cell_idx_t nx = n(domain.xSize()), ny = n(domain.ySize()), nz = n(domain.zSize());
    std::printf("grid: %lld x %lld x %lld cells, dx = %g\n", (long long)nx, (long long)ny,
                (long long)nz, dx);

    field::FlagField flags(nx, ny, nz, 1);
    const auto masks = lbm::BoundaryFlags::registerOn(flags);
    const auto hull = flags.registerFlag("hull");
    const geometry::CellMapping mapping{domain, dx};
    const auto stats = geometry::voxelize(distance, flags, mapping, masks.fluid);
    lbm::markBoundaryHull<lbm::D3Q19>(flags, masks.fluid, 0, hull);

    std::printf("fluid cells: %llu (%.2f%% of the grid; %llu per-cell distance "
                "evaluations, %llu regions pruned)\n",
                (unsigned long long)stats.fluidCells,
                100.0 * double(stats.fluidCells) / (double(nx) * double(ny) * double(nz)),
                (unsigned long long)stats.cellsEvaluated,
                (unsigned long long)stats.regionsPruned);

    io::VtkImageWriter writer(nx, ny, nz, dx, domain.min());
    writer.addFlagField(flags);
    writer.addScalar("signedDistance", [&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        return distance.signedDistance(mapping.cellCenter(x, y, z));
    });
    if (!writer.write(argv[3])) {
        std::fprintf(stderr, "error: cannot write '%s'\n", argv[3]);
        return 1;
    }
    std::printf("wrote %s\n", argv[3]);
    return 0;
}
