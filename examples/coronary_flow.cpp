/// coronary_flow — the paper's flagship scenario end to end, at laptop
/// scale: blood flow through a (synthetic) human coronary artery tree.
///
/// Pipeline (paper §2.3):
///   1. generate the vessel tree and its colored surface mesh (the CTA
///      stand-in; written to coronary_tree.off for inspection),
///   2. search a domain partitioning for the target block count (weak-
///      scaling style binary search over the resolution),
///   3. discard blocks outside the vessels (circumsphere/insphere
///      early-outs), assign exact fluid-cell workloads, balance with the
///      graph partitioner,
///   4. voxelize per block, mark the boundary hull, assign boundary
///      conditions from the mesh vertex colors (red inlet -> velocity
///      bounce back, green outlets -> pressure anti bounce back),
///   5. run distributed on virtual MPI ranks and report MFLUPS and the
///      fluid fraction.

#include <cstdio>

#include "blockforest/ScalingSetup.h"
#include "geometry/BoundarySetup.h"
#include "geometry/CoronaryTree.h"
#include "geometry/MeshIO.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/ThreadComm.h"

using namespace walb;

int main() {
    constexpr int kRanks = 4;
    constexpr uint_t kTargetBlocks = 48;

    // --- 1. geometry -------------------------------------------------------
    geometry::CoronaryTreeParams treeParams;
    treeParams.seed = 2013;
    treeParams.bounds = AABB(0, 0, 0, 1, 1, 1);
    treeParams.rootRadius = 0.055;
    treeParams.minRadius = 0.018;
    treeParams.maxDepth = 8;
    const auto tree = geometry::CoronaryTree::generate(treeParams);
    const auto phi = tree.implicitDistance();
    std::printf("coronary tree: %zu vessel segments, %zu outlets, "
                "%.2f%% of bounding box\n",
                tree.segments().size(), tree.numLeaves(),
                100.0 * tree.boundingBoxFluidFraction());

    auto mesh = tree.surfaceMesh(128);
    geometry::writeOff("coronary_tree.off", mesh);
    std::printf("surface mesh: %zu triangles (written to coronary_tree.off)\n",
                mesh.numTriangles());
    geometry::MeshDistance meshDistance(mesh);

    // --- 2./3. partitioning + balancing -------------------------------------
    auto search = bf::findWeakScalingPartition(*phi, treeParams.bounds, 12, kTargetBlocks);
    auto& setup = search.forest;
    setup.assignFluidCellWorkload(*phi);
    setup.balanceGraph(kRanks);
    const auto stats = setup.balanceStats();
    const uint_t totalCells = uint_c(setup.numBlocks()) * setup.config().cellsPerBlock();
    std::printf("partitioning: %llu blocks of 12^3 cells at dx=%.4f "
                "(target %llu), fluid fraction of kept blocks %.1f%%\n",
                (unsigned long long)setup.numBlocks(), search.dx,
                (unsigned long long)kTargetBlocks,
                100.0 * double(setup.totalWorkload()) / double(totalCells));
    std::printf("graph balancing on %d ranks: workload imbalance %.3f, "
                "max %u blocks/process\n",
                kRanks, stats.imbalance, stats.maxBlocksPerProcess);

    // --- 4. flags: voxelize + hull + colors ---------------------------------
    const Vec3 inletVelocity = tree.inletDirection() * real_c(0.02);
    auto flagInit = [&](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                        const bf::BlockForest::Block& block,
                        const geometry::CellMapping& mapping) {
        (void)block;
        geometry::voxelize(*phi, flags, mapping, masks.fluid);
        const field::flag_t hull = flags.registerFlag("hull");
        lbm::markBoundaryHull<lbm::D3Q19>(flags, masks.fluid, 0, hull);
        geometry::assignBoundaryConditionsFromColors(flags, masks, hull, meshDistance,
                                                     mapping);
    };

    // --- 5. simulate ---------------------------------------------------------
    vmpi::ThreadCommWorld::launch(kRanks, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity(inletVelocity);
        simulation.setPressureDensity(1.0);

        const uint_t fluidCells = simulation.globalFluidCells();
        const uint_t steps = 150;
        simulation.run(steps, lbm::TRT::fromOmegaAndMagic(1.5));

        // Probe the flow in the root vessel, a little downstream of the
        // inlet cap.
        const Vec3 probePoint = tree.inletCenter() +
                                tree.inletDirection() * (4 * tree.inletRadius());
        const Cell probe{cell_idx_t((probePoint[0] - setup.config().domain.min()[0]) / search.dx),
                         cell_idx_t((probePoint[1] - setup.config().domain.min()[1]) / search.dx),
                         cell_idx_t((probePoint[2] - setup.config().domain.min()[2]) / search.dx)};
        const Vec3 u = simulation.gatherCellVelocity(probe);

        if (comm.rank() == 0) {
            std::printf("\nsimulated %llu steps with %llu fluid lattice cells\n",
                        (unsigned long long)steps, (unsigned long long)fluidCells);
            const double mflups = double(fluidCells) * double(steps) /
                                  simulation.timing().grandTotal() / 1e6;
            std::printf("aggregate rate: %.2f MFLUPS, communication share %.1f%%\n", mflups,
                        100.0 * simulation.timing().fraction("communication"));
            std::printf("root-vessel velocity %.4f (inlet drive %.4f): flow %s\n",
                        u.dot(tree.inletDirection()), real_c(0.02),
                        u.dot(tree.inletDirection()) > 1e-4 ? "established" : "NOT established");
        }
    });
    return 0;
}
