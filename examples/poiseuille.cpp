/// poiseuille — physics validation against the analytic channel solution.
///
/// Pressure-driven flow between two plates using the paper's boundary
/// conditions: pressure anti-bounce-back at inlet and outlet, no-slip
/// bounce-back walls. Prints the lattice profile next to the analytic
/// parabola and the relative error, for both SRT and TRT collision
/// operators — TRT with magic parameter 3/16 places the walls exactly.

#include <cstdio>

#include "sim/SingleBlockSimulation.h"

using namespace walb;

namespace {

template <typename Op>
void runChannel(const char* name, const Op& op, real_t nu) {
    const cell_idx_t L = 40, H = 18;
    sim::SingleBlockSimulation::Config config;
    config.xSize = L + 2;
    config.ySize = H + 2;
    config.zSize = 3;
    config.periodicZ = true;
    sim::SingleBlockSimulation simulation(config);

    auto& flags = simulation.flags();
    const auto& masks = simulation.masks();
    const field::flag_t outletFlag = flags.registerFlag("pressureOut");
    const real_t rhoIn = 1.0015, rhoOut = 1.0;
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == 0 || y == H + 1) flags.addFlag(x, y, z, masks.noSlip);
        else if (x == 0) flags.addFlag(x, y, z, masks.pressure);
        else if (x == L + 1) flags.addFlag(x, y, z, outletFlag);
    });
    simulation.fillRemainingWithFluid();
    simulation.finalize();
    simulation.boundary().setPressureDensity(rhoIn);

    lbm::BoundaryFlags outletMasks{masks.fluid, 0, 0, outletFlag};
    lbm::BoundaryHandling<lbm::D3Q19> outlet(flags, outletMasks);
    outlet.setPressureDensity(rhoOut);

    for (int step = 0; step < 14000; ++step) {
        outlet.apply(simulation.pdfs());
        simulation.run(1, op);
    }

    // Effective pressure gradient measured in the developed mid-channel.
    const cell_idx_t xa = L / 3, xb = 2 * L / 3;
    const real_t gradRho =
        (simulation.density(xa, H / 2, 1) - simulation.density(xb, H / 2, 1)) /
        real_c(xb - xa);
    const real_t G = lbm::D3Q19::csSqr * gradRho;

    std::printf("\n%s (omega=1, nu=%.4f): u_x(y) at x=%lld vs analytic\n", name, nu,
                (long long)(L / 2));
    std::printf("  %3s %12s %12s %9s\n", "y", "simulated", "analytic", "rel.err");
    real_t maxRel = 0;
    for (cell_idx_t j = 1; j <= H; ++j) {
        const real_t y = real_c(j) - real_c(0.5);
        const real_t analytic = G / (2 * nu) * y * (real_c(H) - y);
        const real_t simulated = simulation.velocity(L / 2, j, 1)[0];
        const real_t rel = std::abs(simulated - analytic) / analytic;
        maxRel = std::max(maxRel, rel);
        std::printf("  %3lld %12.4e %12.4e %8.3f%%\n", (long long)j, simulated, analytic,
                    100.0 * rel);
    }
    std::printf("  max relative profile error: %.3f%%\n", 100.0 * maxRel);
}

} // namespace

int main() {
    std::printf("pressure-driven Poiseuille channel validation\n");
    const real_t omega = 1.0;
    runChannel("SRT", lbm::SRT(omega), lbm::SRT(omega).viscosity());
    runChannel("TRT (magic 3/16)", lbm::TRT::fromOmegaAndMagic(omega),
               lbm::TRT::fromOmegaAndMagic(omega).viscosity());
    return 0;
}
