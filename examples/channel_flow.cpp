/// channel_flow — distributed multi-block simulation of channel flow
/// around a fixed spherical obstacle (obstacle-to-fluid ratio < 1%), the
/// second weak-scaling scenario of paper §4.2.
///
/// Demonstrates the full distributed pipeline on virtual MPI ranks: block
/// forest setup, graph load balancing, ghost-layer exchange, and the
/// timing breakdown (compute vs communication) behind Figure 6.

#include <cstdio>

#include "blockforest/SetupBlockForest.h"
#include "sim/DistributedSimulation.h"
#include "vmpi/ThreadComm.h"

using namespace walb;

int main() {
    // Global domain: a 64 x 32 x 32 channel split into 4 x 2 x 2 blocks.
    constexpr cell_idx_t NX = 64, NY = 32, NZ = 32;
    constexpr int kRanks = 4;

    bf::SetupConfig setupConfig;
    setupConfig.domain = AABB(0, 0, 0, real_c(NX), real_c(NY), real_c(NZ));
    setupConfig.rootBlocksX = 4;
    setupConfig.rootBlocksY = 2;
    setupConfig.rootBlocksZ = 2;
    setupConfig.cellsPerBlockX = 16;
    setupConfig.cellsPerBlockY = 16;
    setupConfig.cellsPerBlockZ = 16;

    auto setup = bf::SetupBlockForest::create(setupConfig);
    setup.balanceGraph(kRanks);
    const auto stats = setup.balanceStats();
    std::printf("channel flow: %zu blocks on %d ranks, workload imbalance %.3f\n",
                setup.numBlocks(), kRanks, stats.imbalance);

    // Obstacle: a sphere of radius NY/8 in the front third of the channel
    // (obstacle fraction ~0.3% of the domain volume, as in the paper).
    const Vec3 obstacleCenter(real_c(NX) / 4, real_c(NY) / 2, real_c(NZ) / 2);
    const real_t obstacleRadius = real_c(NY) / 8;

    auto flagInit = [&](field::FlagField& flags, const lbm::BoundaryFlags& masks,
                        const bf::BlockForest::Block& block,
                        const geometry::CellMapping& mapping) {
        flags.forAllIncludingGhost([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
            const Vec3 p = mapping.cellCenter(x, y, z);
            if (p[0] < 0 || p[1] < 0 || p[2] < 0 || p[0] > NX || p[1] > NY || p[2] > NZ)
                return;
            const Cell g{cell_idx_t(p[0]), cell_idx_t(p[1]), cell_idx_t(p[2])};
            if ((p - obstacleCenter).length() < obstacleRadius)
                flags.addFlag(x, y, z, masks.noSlip); // the obstacle
            else if (g.x == 0) flags.addFlag(x, y, z, masks.ubb); // inflow
            else if (g.x == NX - 1) flags.addFlag(x, y, z, masks.pressure); // outflow
            else if (g.y == 0 || g.y == NY - 1 || g.z == 0 || g.z == NZ - 1)
                flags.addFlag(x, y, z, masks.noSlip); // channel walls
            else flags.addFlag(x, y, z, masks.fluid);
        });
        (void)block;
    };

    vmpi::ThreadCommWorld::launch(kRanks, [&](vmpi::Comm& comm) {
        sim::DistributedSimulation simulation(comm, setup, flagInit);
        simulation.setWallVelocity({0.04, 0, 0});
        simulation.setPressureDensity(1.0);

        const uint_t fluidCells = simulation.globalFluidCells();
        const uint_t steps = 300;
        simulation.run(steps, lbm::TRT::fromOmegaAndMagic(1.7));

        if (comm.rank() == 0) {
            const double totalCells =
                double(NX * NY * NZ);
            std::printf("fluid cells: %llu (%.1f%% of domain; obstacle+walls excluded)\n",
                        (unsigned long long)fluidCells,
                        100.0 * double(fluidCells) / totalCells);
        }
        // Velocity downstream of the obstacle and in the free stream.
        const Vec3 wake = simulation.gatherCellVelocity(
            {cell_idx_t(obstacleCenter[0] + obstacleRadius + 3), NY / 2, NZ / 2});
        const Vec3 freeStream = simulation.gatherCellVelocity({3 * NX / 4, NY / 4, NZ / 2});
        const double mpiPct = 100.0 * simulation.timing().fraction("communication");
        if (comm.rank() == 0) {
            std::printf("wake velocity        u = (%+.5f, %+.5f, %+.5f)\n", wake[0], wake[1],
                        wake[2]);
            std::printf("free-stream velocity u = (%+.5f, %+.5f, %+.5f)\n", freeStream[0],
                        freeStream[1], freeStream[2]);
            const double mlups = double(fluidCells) * double(steps) /
                                 simulation.timing().grandTotal() / 1e6;
            std::printf("aggregate rate: %.1f MFLUPS, communication share %.1f%%\n", mlups,
                        mpiPct);
            std::printf("(the wake must be slower than the free stream: %s)\n",
                        wake[0] < freeStream[0] ? "ok" : "VIOLATED");
        }
    });
    return 0;
}
