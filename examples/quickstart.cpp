/// quickstart — the smallest complete walb simulation.
///
/// Sets up a 3-D lid-driven cavity on a single block, runs the vectorized
/// two-relaxation-time LBM and reports the centerline velocity profile and
/// the achieved MLUPS. Start here to learn the API; the other examples
/// build up to the distributed multi-block pipeline of the paper.

#include <cstdio>

#include "core/Timer.h"
#include "sim/SingleBlockSimulation.h"

int main() {
    using namespace walb;
    using sim::SingleBlockSimulation;

    // 1. Describe the domain: a 48^3 box of lattice cells.
    constexpr cell_idx_t N = 48;
    SingleBlockSimulation::Config config;
    config.xSize = config.ySize = config.zSize = N;
    config.tier = sim::KernelTier::Simd; // the optimized SoA split-loop kernel
    SingleBlockSimulation simulation(config);

    // 2. Flag the geometry: a moving lid on top, walls everywhere else,
    //    fluid inside.
    auto& flags = simulation.flags();
    const auto& masks = simulation.masks();
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        if (y == N - 1) flags.addFlag(x, y, z, masks.ubb);
        else if (x == 0 || x == N - 1 || y == 0 || z == 0 || z == N - 1)
            flags.addFlag(x, y, z, masks.noSlip);
    });
    simulation.fillRemainingWithFluid();

    // 3. Finalize (builds boundary link lists, initializes equilibrium).
    simulation.finalize();
    simulation.boundary().setWallVelocity({0.05, 0, 0});

    // 4. Run: TRT collision with the canonical magic parameter 3/16.
    const auto op = lbm::TRT::fromOmegaAndMagic(1.6);
    const uint_t steps = 500;
    Timer timer;
    timer.start();
    simulation.run(steps, op);
    timer.stop();

    const double mlups =
        double(simulation.fluidCells()) * double(steps) / timer.total() / 1e6;
    std::printf("lid-driven cavity, %lld^3 cells, %llu fluid cells\n", (long long)N,
                (unsigned long long)simulation.fluidCells());
    std::printf("%llu time steps in %.2f s  ->  %.1f MLUPS (%s kernel)\n",
                (unsigned long long)steps, timer.total(), mlups,
                simd::backendName<simd::BestD>());

    std::printf("\ncenterline x-velocity profile u_x(y) at x=z=%lld:\n", (long long)(N / 2));
    for (cell_idx_t y = 1; y < N - 1; y += 4) {
        const Vec3 u = simulation.velocity(N / 2, y, N / 2);
        std::printf("  y=%2lld  u_x=%+.6f  u_y=%+.6f\n", (long long)y, u[0], u[1]);
    }
    std::printf("\nmass conservation check: total mass %.12f (ideal %.1f)\n",
                simulation.totalMass(), double(simulation.fluidCells()));
    return 0;
}
