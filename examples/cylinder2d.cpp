/// cylinder2d — two-dimensional flow around a circular cylinder with the
/// D2Q9 model, composed from the low-level building blocks (fields, flag
/// fields, generic kernel, boundary handling, periodic slice copies)
/// instead of a simulation driver. Demonstrates that every piece of the
/// framework is stencil-generic: the same templates that run the paper's
/// D3Q19 production kernels run D2Q9 here.
///
/// Reports the drag force on the cylinder via the momentum-exchange method
/// and writes the flow field to cylinder2d.vti for ParaView.

#include <cstdio>

#include "io/VtkOutput.h"
#include "lbm/Boundary.h"
#include "lbm/Communication.h"
#include "lbm/Force.h"
#include "lbm/KernelGeneric.h"

using namespace walb;
using M = lbm::D2Q9;

int main() {
    // Channel of 160 x 64 cells (z is a single layer: D2Q9 never moves in z).
    constexpr cell_idx_t NX = 160, NY = 64;
    const Vec3 center(real_c(NX) / 4, real_c(NY) / 2, real_c(0.5));
    const real_t radius = real_c(NY) / 10;

    field::FlagField flags(NX, NY, 1, 1);
    const auto masks = lbm::BoundaryFlags::registerOn(flags);
    const auto outletFlag = flags.registerFlag("pressureOut");
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Vec3 p(real_c(x) + real_c(0.5), real_c(y) + real_c(0.5), real_c(0.5));
        if ((p - center).length() < radius) flags.addFlag(x, y, z, masks.noSlip);
        else if (y == 0 || y == NY - 1) flags.addFlag(x, y, z, masks.noSlip);
        else if (x == 0) flags.addFlag(x, y, z, masks.ubb);
        else if (x == NX - 1) flags.addFlag(x, y, z, outletFlag);
        else flags.addFlag(x, y, z, masks.fluid);
    });

    lbm::PdfField src = lbm::makePdfField<M>(NX, NY, 1);
    lbm::PdfField dst = lbm::makePdfField<M>(NX, NY, 1);
    const real_t uIn = 0.04;
    lbm::initEquilibrium<M>(src, 1.0, {uIn, 0, 0});
    lbm::initEquilibrium<M>(dst, 1.0, {uIn, 0, 0});

    lbm::BoundaryHandling<M> boundary(flags, masks);
    boundary.setWallVelocity({uIn, 0, 0});
    lbm::BoundaryFlags outletMasks{masks.fluid, 0, 0, outletFlag};
    lbm::BoundaryHandling<M> outlet(flags, outletMasks);
    outlet.setPressureDensity(1.0);

    // A cylinder-only handler for the drag measurement.
    field::FlagField cylinderFlags(NX, NY, 1, 1);
    auto cm = lbm::BoundaryFlags::registerOn(cylinderFlags);
    flags.forAllInterior([&](cell_idx_t x, cell_idx_t y, cell_idx_t z) {
        const Vec3 p(real_c(x) + real_c(0.5), real_c(y) + real_c(0.5), real_c(0.5));
        if (flags.isFlagSet(x, y, z, masks.fluid)) cylinderFlags.addFlag(x, y, z, cm.fluid);
        else if ((p - center).length() < radius) cylinderFlags.addFlag(x, y, z, cm.noSlip);
    });
    lbm::BoundaryHandling<M> cylinder(cylinderFlags, cm);

    const auto op = lbm::TRT::fromOmegaAndMagic(1.75); // nu ~ 0.024, Re ~ 21
    const real_t nu = op.viscosity();
    std::printf("2-D cylinder: D=%.1f cells, u=%.3f, nu=%.4f, Re=%.1f (steady wake "
                "regime)\n",
                2 * radius, uIn, nu, uIn * 2 * radius / nu);

    const uint_t steps = 8000;
    for (uint_t step = 0; step < steps; ++step) {
        boundary.apply(src);
        outlet.apply(src);
        lbm::streamCollideGeneric<M>(src, dst, op, &flags, masks.fluid);
        src.swapDataWith(dst);
    }

    // Drag via momentum exchange on the cylinder links only.
    cylinder.apply(src);
    const Vec3 force = lbm::computeBoundaryForce<M>(cylinder, src);
    // 2-D drag coefficient: Cd = Fx / (1/2 rho u^2 D), per unit depth.
    const real_t cd = force[0] / (real_c(0.5) * uIn * uIn * 2 * radius);
    std::printf("drag force Fx=%.5e, lift Fy=%.2e  ->  Cd=%.2f "
                "(confined low-Re cylinders: Cd of a few is expected;\n  cf. Schaefer-Turek Cd=5.58 at Re=20, 20%% blockage)\n",
                force[0], force[1], cd);

    const Vec3 wake = lbm::cellVelocity<M>(src, cell_idx_t(center[0] + 2 * radius), NY / 2, 0);
    const Vec3 freeStream = lbm::cellVelocity<M>(src, 3 * NX / 4, NY / 4, 0);
    std::printf("wake u_x=%.4f vs free stream u_x=%.4f (%s)\n", wake[0], freeStream[0],
                wake[0] < freeStream[0] ? "recirculation ok" : "UNEXPECTED");

    io::VtkImageWriter writer(NX, NY, 1);
    writer.addPdfField<M>(src);
    writer.addFlagField(flags);
    if (writer.write("cylinder2d.vti"))
        std::printf("flow field written to cylinder2d.vti\n");
    return 0;
}
